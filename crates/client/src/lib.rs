//! # omega-client
//!
//! Blocking client library for the Omega serving layer: connect over a unix
//! or TCP socket, prepare statements, execute queries with full
//! [`omega_core::ExecOptions`], and stream ranked answers with client-driven
//! backpressure (credit top-ups). Also hosts the load generator used by the
//! `serve` benchmark suite ([`mod@bench`]).
//!
//! ```no_run
//! use omega_client::Connection;
//! use omega_core::ExecOptions;
//!
//! let mut conn = Connection::connect_unix("/tmp/omega.sock").unwrap();
//! let mut stream = conn
//!     .execute_text("(?X) <- (Work Episode, type-, ?X)", &ExecOptions::new().with_limit(10))
//!     .unwrap();
//! while let Some(answer) = stream.next_answer().unwrap() {
//!     println!("{} {:?}", answer.distance, answer.bindings);
//! }
//! ```

pub mod bench;

use std::collections::VecDeque;
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

use omega_core::{Answer, EvalStats, ExecOptions, MutationReport, QueryProfile};
use omega_protocol::{
    write_frame, FinishReason, Frame, FrameReader, ProtocolError, StatementRef, Transport,
    WireError, DEFAULT_CREDITS, PROTOCOL_VERSION,
};

pub use omega_protocol::ServerStats;

/// A metrics exposition fetched from the server: versioned text, one
/// `name{labels} value` line per series (the `omega_obs::Registry`
/// exposition format; `omega_obs::find_value` parses individual series out
/// of `text`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Exposition text format version
    /// ([`omega_protocol::METRICS_EXPOSITION_VERSION`] at the server).
    pub version: u32,
    /// The rendered exposition.
    pub text: String,
}

/// Everything that can go wrong on the client side of a connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Transport or framing failure (connection unusable afterwards).
    Protocol(ProtocolError),
    /// A typed failure reported by the server (connection stays usable).
    Remote(WireError),
    /// The server sent a frame that makes no sense in the current state.
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "protocol failure: {e}"),
            ClientError::Remote(e) => write!(f, "server error: {e}"),
            ClientError::Unexpected(what) => write!(f, "unexpected server frame: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> ClientError {
        ClientError::Protocol(e)
    }
}

impl ClientError {
    /// The engine error carried by a `Remote` failure, if any.
    pub fn engine_error(&self) -> Option<&omega_core::OmegaError> {
        match self {
            ClientError::Remote(WireError::Engine(e)) => Some(e),
            _ => None,
        }
    }

    /// The server's suggested backoff, when this failure is an
    /// `Overloaded { retry_after }` rejection.
    pub fn retry_after(&self) -> Option<Duration> {
        match self.engine_error() {
            Some(omega_core::OmegaError::Overloaded { retry_after }) => Some(*retry_after),
            _ => None,
        }
    }

    /// Whether the failure broke the transport (broken pipe, reset, EOF) —
    /// a retry must reconnect first.
    pub fn is_transport(&self) -> bool {
        matches!(self, ClientError::Protocol(_))
    }
}

/// SplitMix64, the jitter mixer of [`RetryPolicy`] (no RNG dependency).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A capped, jittered retry schedule for transient request failures.
///
/// Two failure classes are retryable: `Overloaded { retry_after }`
/// rejections (the connection stays usable, and the server's hint is the
/// floor of the backoff) and transport failures such as a broken pipe (the
/// caller must reconnect first — [`Backoff::reconnect`] says so). Everything
/// else — parse errors, read-only mode, resource exhaustion — is permanent
/// from the client's point of view and never retried.
///
/// The delay for attempt `n` grows exponentially from the floor, is capped
/// at [`RetryPolicy::cap`], and is jittered deterministically in
/// `[delay/2, delay]` from [`RetryPolicy::seed`] so a fleet of clients
/// decorrelates without a shared RNG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (0 = fail fast).
    pub attempts: u32,
    /// Base delay for the first retry when the server gave no hint.
    pub base: Duration,
    /// Ceiling on any single backoff sleep.
    pub cap: Duration,
    /// Seed of the deterministic jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 3,
            base: Duration::from_millis(10),
            cap: Duration::from_secs(1),
            seed: 0x0be5_5072_11cc_c0de,
        }
    }
}

/// What to do about one failed attempt (see [`RetryPolicy::backoff`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// How long to sleep before the retry.
    pub delay: Duration,
    /// Whether the connection is gone and must be re-established.
    pub reconnect: bool,
}

impl RetryPolicy {
    /// A policy with `attempts` retries and the default delays.
    pub fn new(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            attempts,
            ..RetryPolicy::default()
        }
    }

    /// Replaces the base delay.
    #[must_use]
    pub fn with_base(mut self, base: Duration) -> RetryPolicy {
        self.base = base;
        self
    }

    /// Replaces the delay ceiling.
    #[must_use]
    pub fn with_cap(mut self, cap: Duration) -> RetryPolicy {
        self.cap = cap;
        self
    }

    /// Replaces the jitter seed (give each worker its own).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> RetryPolicy {
        self.seed = seed;
        self
    }

    /// Decides whether `err` on the 0-based `attempt` is worth retrying.
    /// `None` means give up: the error is permanent, or the budget is spent.
    pub fn backoff(&self, err: &ClientError, attempt: u32) -> Option<Backoff> {
        if attempt >= self.attempts {
            return None;
        }
        let (floor, reconnect) = if err.is_transport() {
            (self.base, true)
        } else {
            (err.retry_after()?.max(self.base), false)
        };
        let scaled = floor.saturating_mul(1u32 << attempt.min(16));
        let capped = scaled.min(self.cap);
        let nanos = u64::try_from(capped.as_nanos()).unwrap_or(u64::MAX);
        let delay = if nanos == 0 {
            0
        } else {
            // Jitter into [nanos/2, nanos]: decorrelated, but never below
            // half the server's hint.
            let h = splitmix64(self.seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            nanos / 2 + h % (nanos / 2 + 1)
        };
        Some(Backoff {
            delay: Duration::from_nanos(delay),
            reconnect,
        })
    }
}

pub type Result<T> = std::result::Result<T, ClientError>;

/// A server-side prepared statement, scoped to the connection that made it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Statement {
    /// Connection-scoped statement id.
    pub id: u64,
    /// Number of conjuncts in the compiled query body.
    pub conjuncts: u32,
    /// Head (distinguished) variables, in projection order.
    pub head: Vec<String>,
}

/// A batch of edge mutations, applied atomically server-side by
/// [`Connection::mutate`]: the server publishes all of it as one new
/// storage epoch, or none of it. The client-side mirror of
/// [`omega_core::MutationBatch`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Mutation {
    adds: Vec<(String, String, String)>,
    removes: Vec<(String, String, String)>,
}

impl Mutation {
    /// An empty batch.
    pub fn new() -> Mutation {
        Mutation::default()
    }

    /// Queues adding the edge `tail --label--> head` (unknown node or edge
    /// labels are created).
    pub fn add(&mut self, tail: &str, label: &str, head: &str) -> &mut Self {
        self.adds.push((tail.into(), label.into(), head.into()));
        self
    }

    /// Queues removing the edge `tail --label--> head` (removing an edge
    /// the graph does not have is a no-op).
    pub fn remove(&mut self, tail: &str, label: &str, head: &str) -> &mut Self {
        self.removes.push((tail.into(), label.into(), head.into()));
        self
    }

    /// Whether the batch holds no operations.
    pub fn is_empty(&self) -> bool {
        self.adds.is_empty() && self.removes.is_empty()
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.adds.len() + self.removes.len()
    }
}

/// A blocking protocol connection.
pub struct Connection {
    writer: Transport,
    reader: FrameReader<Transport>,
    server: String,
    version: u32,
    /// Credit window for executions started on this connection.
    window: u32,
}

impl Connection {
    /// Connects over a unix-domain socket and performs the handshake.
    pub fn connect_unix<P: AsRef<Path>>(path: P) -> Result<Connection> {
        let stream = UnixStream::connect(path).map_err(ProtocolError::from)?;
        Connection::establish(Transport::Unix(stream))
    }

    /// Connects over TCP (with `TCP_NODELAY`) and performs the handshake.
    pub fn connect_tcp<A: ToSocketAddrs>(addr: A) -> Result<Connection> {
        let stream = TcpStream::connect(addr).map_err(ProtocolError::from)?;
        let _ = stream.set_nodelay(true);
        Connection::establish(Transport::Tcp(stream))
    }

    fn establish(transport: Transport) -> Result<Connection> {
        let reader_half = transport.try_clone().map_err(ProtocolError::from)?;
        let mut conn = Connection {
            writer: transport,
            reader: FrameReader::new(reader_half),
            server: String::new(),
            version: PROTOCOL_VERSION,
            window: DEFAULT_CREDITS,
        };
        conn.send(&Frame::Hello {
            version: PROTOCOL_VERSION,
        })?;
        match conn.recv()? {
            Frame::HelloOk { version, server } => {
                conn.version = version;
                conn.server = server;
                Ok(conn)
            }
            Frame::Fail { error } => Err(ClientError::Remote(error)),
            _ => Err(ClientError::Unexpected("handshake reply")),
        }
    }

    /// The server's software identifier from the handshake.
    pub fn server(&self) -> &str {
        &self.server
    }

    /// The negotiated protocol version.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Sets the credit window granted to subsequent executions (how many
    /// answers the server may send ahead of consumption).
    pub fn set_window(&mut self, window: u32) {
        self.window = window.max(1);
    }

    fn send(&mut self, frame: &Frame) -> Result<()> {
        write_frame(&mut self.writer, frame)?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Frame> {
        match self.reader.read_frame()? {
            Some(frame) => Ok(frame),
            // EOF while awaiting a reply: the server went away.
            None => Err(ClientError::Protocol(ProtocolError::Io(
                "connection closed by server".into(),
            ))),
        }
    }

    /// Prepares `text` server-side, returning the statement handle.
    pub fn prepare(&mut self, text: &str) -> Result<Statement> {
        self.send(&Frame::Prepare { text: text.into() })?;
        match self.recv()? {
            Frame::Prepared {
                id,
                conjuncts,
                head,
            } => Ok(Statement {
                id,
                conjuncts,
                head,
            }),
            Frame::Fail { error } => Err(ClientError::Remote(error)),
            _ => Err(ClientError::Unexpected("prepare reply")),
        }
    }

    /// Closes a prepared statement.
    pub fn close(&mut self, id: u64) -> Result<()> {
        self.send(&Frame::Close { id })?;
        match self.recv()? {
            Frame::Closed => Ok(()),
            Frame::Fail { error } => Err(ClientError::Remote(error)),
            _ => Err(ClientError::Unexpected("close reply")),
        }
    }

    /// Fetches the daemon's statistics (governor gauges + server counters).
    pub fn stats(&mut self) -> Result<ServerStats> {
        self.send(&Frame::Stats)?;
        match self.recv()? {
            Frame::StatsReply { stats } => Ok(stats),
            Frame::Fail { error } => Err(ClientError::Remote(error)),
            _ => Err(ClientError::Unexpected("stats reply")),
        }
    }

    /// Fetches the server's full metrics exposition (counters, gauges and
    /// latency histograms from every layer that registered into the
    /// database's registry).
    pub fn metrics(&mut self) -> Result<MetricsSnapshot> {
        self.send(&Frame::Metrics)?;
        match self.recv()? {
            Frame::MetricsReply { version, text } => Ok(MetricsSnapshot { version, text }),
            Frame::Fail { error } => Err(ClientError::Remote(error)),
            _ => Err(ClientError::Unexpected("metrics reply")),
        }
    }

    /// Applies a mutation batch atomically server-side. On success every
    /// operation landed as one new storage epoch; in-flight answer streams
    /// (on any connection) keep the epoch they started on, and statements
    /// prepared afterwards see the change.
    pub fn mutate(&mut self, mutation: &Mutation) -> Result<MutationReport> {
        self.send(&Frame::Mutate {
            adds: mutation.adds.clone(),
            removes: mutation.removes.clone(),
        })?;
        match self.recv()? {
            Frame::MutateOk {
                epoch,
                added,
                removed,
            } => Ok(MutationReport {
                epoch,
                added,
                removed,
            }),
            Frame::Fail { error } => Err(ClientError::Remote(error)),
            _ => Err(ClientError::Unexpected("mutate reply")),
        }
    }

    /// Asks the daemon to drain and shut down gracefully.
    pub fn shutdown_server(&mut self) -> Result<()> {
        self.send(&Frame::Shutdown)?;
        match self.recv()? {
            Frame::ShutdownOk => Ok(()),
            Frame::Fail { error } => Err(ClientError::Remote(error)),
            _ => Err(ClientError::Unexpected("shutdown reply")),
        }
    }

    /// Starts an execution of query `text` (prepared server-side through the
    /// shared plan cache).
    pub fn execute_text(&mut self, text: &str, options: &ExecOptions) -> Result<AnswerStream<'_>> {
        self.execute(StatementRef::Text(text.into()), options)
    }

    /// Starts an execution of a prepared statement.
    pub fn execute_prepared(
        &mut self,
        statement: &Statement,
        options: &ExecOptions,
    ) -> Result<AnswerStream<'_>> {
        self.execute(StatementRef::Id(statement.id), options)
    }

    /// Starts an execution; answers stream back under the connection's
    /// credit window.
    pub fn execute(
        &mut self,
        statement: StatementRef,
        options: &ExecOptions,
    ) -> Result<AnswerStream<'_>> {
        let window = self.window;
        self.send(&Frame::Execute {
            statement,
            options: options.clone(),
            credits: window,
        })?;
        Ok(AnswerStream {
            conn: self,
            window,
            outstanding: window,
            buffer: VecDeque::new(),
            finished: None,
            failed: false,
        })
    }

    /// Convenience: executes `text` and collects every answer plus the final
    /// statistics — the remote analogue of [`omega_core::Database::execute`].
    pub fn run(&mut self, text: &str, options: &ExecOptions) -> Result<(Vec<Answer>, EvalStats)> {
        let mut stream = self.execute_text(text, options)?;
        let mut answers = Vec::new();
        while let Some(answer) = stream.next_answer()? {
            answers.push(answer);
        }
        let stats = stream.stats().unwrap_or_default();
        Ok((answers, stats))
    }
}

/// A streaming result set: pulls `Answers` batches off the wire, granting
/// credit top-ups as the local buffer drains, until the terminal `Finished`
/// or `Fail` frame.
///
/// Dropping the stream before exhaustion sends `Cancel` and drains to the
/// terminal frame, so the connection is immediately reusable and the
/// server-side execution stops.
pub struct AnswerStream<'a> {
    conn: &'a mut Connection,
    window: u32,
    /// Credits the server may still spend (granted minus received).
    outstanding: u32,
    buffer: VecDeque<Answer>,
    finished: Option<Finished>,
    failed: bool,
}

/// The contents of the terminal `Finished` frame.
struct Finished {
    stats: EvalStats,
    reason: FinishReason,
    profile: Option<QueryProfile>,
}

impl AnswerStream<'_> {
    /// The next ranked answer, or `None` after the stream finished.
    pub fn next_answer(&mut self) -> Result<Option<Answer>> {
        loop {
            if let Some(answer) = self.buffer.pop_front() {
                return Ok(Some(answer));
            }
            if self.finished.is_some() {
                return Ok(None);
            }
            if self.failed {
                // A failed stream yields nothing further.
                return Ok(None);
            }
            // Top up the window before blocking so the server never stalls
            // waiting for credits the client is about to grant anyway.
            if self.outstanding < self.window.div_ceil(2) {
                let grant = self.window - self.outstanding;
                self.conn.send(&Frame::Fetch { credits: grant })?;
                self.outstanding += grant;
            }
            match self.conn.recv()? {
                Frame::Answers { answers } => {
                    self.outstanding = self
                        .outstanding
                        .saturating_sub(u32::try_from(answers.len()).unwrap_or(u32::MAX));
                    self.buffer.extend(answers);
                }
                Frame::Finished {
                    stats,
                    reason,
                    profile,
                } => {
                    self.finished = Some(Finished {
                        stats,
                        reason,
                        profile,
                    });
                }
                Frame::Fail { error } => {
                    self.failed = true;
                    return Err(ClientError::Remote(error));
                }
                _ => {
                    self.failed = true;
                    return Err(ClientError::Unexpected("answer stream frame"));
                }
            }
        }
    }

    /// Final evaluator statistics (present once the stream finished).
    pub fn stats(&self) -> Option<EvalStats> {
        self.finished.as_ref().map(|f| f.stats)
    }

    /// How the stream ended (`Complete`, or `Drained` by server shutdown).
    pub fn finish_reason(&self) -> Option<FinishReason> {
        self.finished.as_ref().map(|f| f.reason)
    }

    /// The server-side per-phase timing breakdown. Present once the stream
    /// finished *and* the request asked for one via
    /// [`omega_core::ExecOptions::with_profile`].
    pub fn profile(&self) -> Option<&QueryProfile> {
        self.finished.as_ref().and_then(|f| f.profile.as_ref())
    }

    /// Cancels the execution and waits for the server's acknowledgement
    /// (the terminal frame). The connection is reusable afterwards.
    pub fn cancel(mut self) -> Result<()> {
        self.abort()
    }

    /// Sends `Cancel` (if the stream is still live) and drains to the
    /// terminal frame.
    fn abort(&mut self) -> Result<()> {
        if self.finished.is_some() || self.failed {
            return Ok(());
        }
        self.failed = true;
        self.conn.send(&Frame::Cancel)?;
        loop {
            match self.conn.recv()? {
                Frame::Answers { .. } => {}
                Frame::Finished {
                    stats,
                    reason,
                    profile,
                } => {
                    self.finished = Some(Finished {
                        stats,
                        reason,
                        profile,
                    });
                    return Ok(());
                }
                Frame::Fail { .. } => return Ok(()),
                _ => return Err(ClientError::Unexpected("cancel reply")),
            }
        }
    }
}

impl Drop for AnswerStream<'_> {
    fn drop(&mut self) {
        // Best effort: an abandoned stream must not leave answer frames in
        // flight on a connection that will be reused.
        let _ = self.abort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_core::OmegaError;

    fn overloaded(ms: u64) -> ClientError {
        ClientError::Remote(WireError::Engine(OmegaError::Overloaded {
            retry_after: Duration::from_millis(ms),
        }))
    }

    fn transport() -> ClientError {
        ClientError::Protocol(ProtocolError::Io("broken pipe".into()))
    }

    #[test]
    fn overloaded_backoff_floors_at_the_server_hint() {
        let policy = RetryPolicy::new(3).with_base(Duration::from_millis(1));
        let backoff = policy.backoff(&overloaded(40), 0).expect("retryable");
        assert!(!backoff.reconnect, "connection stays usable");
        assert!(
            backoff.delay >= Duration::from_millis(20)
                && backoff.delay <= Duration::from_millis(40),
            "jitter lands in [hint/2, hint], got {:?}",
            backoff.delay
        );
    }

    #[test]
    fn transport_failures_demand_a_reconnect() {
        let policy = RetryPolicy::new(1);
        let backoff = policy.backoff(&transport(), 0).expect("retryable");
        assert!(backoff.reconnect);
        assert!(backoff.delay >= policy.base / 2 && backoff.delay <= policy.base);
    }

    #[test]
    fn permanent_errors_and_spent_budgets_give_up() {
        let policy = RetryPolicy::new(2);
        let permanent = ClientError::Remote(WireError::Engine(OmegaError::ReadOnly {
            message: "degraded".into(),
        }));
        assert_eq!(policy.backoff(&permanent, 0), None, "never retried");
        assert_eq!(policy.backoff(&overloaded(1), 2), None, "budget spent");
        assert_eq!(
            RetryPolicy::new(0).backoff(&transport(), 0),
            None,
            "zero attempts = fail fast"
        );
    }

    #[test]
    fn backoff_grows_but_never_exceeds_the_cap() {
        let policy = RetryPolicy::new(32)
            .with_base(Duration::from_millis(8))
            .with_cap(Duration::from_millis(100));
        let mut last = Duration::ZERO;
        for attempt in 0..32 {
            let backoff = policy.backoff(&transport(), attempt).expect("in budget");
            assert!(backoff.delay <= policy.cap, "attempt {attempt} over cap");
            // The deterministic floor (delay/2 of the capped exponential)
            // is monotone until the cap flattens it.
            if attempt < 4 {
                assert!(backoff.delay >= last / 2, "attempt {attempt} shrank");
            }
            last = backoff.delay;
        }
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_decorrelated_across_seeds() {
        let policy = RetryPolicy::new(4);
        let a = policy.backoff(&transport(), 1).expect("retryable");
        let b = policy.backoff(&transport(), 1).expect("retryable");
        assert_eq!(a, b, "same seed and attempt replays the same delay");
        let other = policy.with_seed(policy.seed ^ 1);
        let c = other.backoff(&transport(), 1).expect("retryable");
        assert_ne!(a.delay, c.delay, "different seeds decorrelate");
    }
}
