//! The `omega-client` CLI: interactive REPL, one-shot execution, daemon
//! statistics/shutdown, and a load-generator bench mode.
//!
//! ```text
//! omega-client --unix /tmp/omega.sock repl
//! omega-client --unix /tmp/omega.sock exec "(?X) <- (Work Episode, type-, ?X)" --limit 5
//! omega-client --tcp 127.0.0.1:7474 bench --connections 8 --requests 400 \
//!     --query "(?X) <- APPROX (Work Episode, type-, ?X)" --limit 100
//! omega-client --unix /tmp/omega.sock shutdown
//! ```

use std::io::{BufRead, Write};
use std::process::exit;
use std::time::Duration;

use omega_client::bench::{run_load, Endpoint, LoadMode, LoadSpec};
use omega_client::{AnswerStream, ClientError, Connection, Mutation, RetryPolicy, Statement};
use omega_core::{Answer, ExecOptions, OverloadPolicy};
use omega_protocol::FinishReason;

const USAGE: &str = "\
omega-client: CLI for the Omega serving daemon

USAGE:
    omega-client (--unix PATH | --tcp ADDR) COMMAND [OPTIONS]

COMMANDS:
    repl                  interactive session (the default)
    exec QUERY            run one query and print its answers
    stats                 print daemon statistics
    metrics               print the daemon's metrics exposition
    shutdown              drain the daemon gracefully
    bench                 generate load and report latency percentiles

EXEC OPTIONS (exec, bench, and the repl's defaults):
    --limit N             stop after N answers
    --timeout-ms N        per-request deadline
    --max-distance N      flexible-match distance ceiling
    --max-tuples N        per-request tuple budget
    --policy P            overload policy: fail | degrade | shed
    --window N            streaming credit window (default 256)

BENCH OPTIONS:
    --query TEXT          query to drive (required)
    --connections N       concurrent connections (default 4)
    --requests N          total requests (default 200)
    --rate R              open-loop arrival rate in req/s (default: closed loop)
    --retries N           retry Overloaded rejections and broken connections
                          up to N times with capped jittered backoff,
                          honouring the server's retry-after hint
                          (default: fail fast)
    --retry-base-ms N     backoff floor for the first retry (default 10)
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(message) = run(&args) {
        eprintln!("omega-client: {message}");
        exit(2);
    }
}

struct Cli {
    endpoint: Endpoint,
    command: String,
    query: Option<String>,
    options: ExecOptions,
    window: u32,
    connections: usize,
    requests: usize,
    rate: Option<f64>,
    retry: Option<RetryPolicy>,
}

fn parse_cli(args: &[String]) -> Result<Option<Cli>, String> {
    let mut endpoint: Option<Endpoint> = None;
    let mut command: Option<String> = None;
    let mut query: Option<String> = None;
    let mut options = ExecOptions::new();
    let mut window: u32 = omega_protocol::DEFAULT_CREDITS;
    let mut connections = 4usize;
    let mut requests = 200usize;
    let mut rate: Option<f64> = None;
    let mut retries: Option<u32> = None;
    let mut retry_base_ms: Option<u64> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(None);
            }
            "--unix" => endpoint = Some(Endpoint::Unix(value("--unix")?.into())),
            "--tcp" => endpoint = Some(Endpoint::Tcp(value("--tcp")?.clone())),
            "--limit" => options = options.with_limit(parse(value("--limit")?)?),
            "--timeout-ms" => {
                options =
                    options.with_timeout(Duration::from_millis(parse(value("--timeout-ms")?)?));
            }
            "--max-distance" => {
                options = options.with_max_distance(parse(value("--max-distance")?)?);
            }
            "--max-tuples" => options = options.with_max_tuples(parse(value("--max-tuples")?)?),
            "--policy" => options = options.with_on_overload(parse_policy(value("--policy")?)?),
            "--window" => window = parse(value("--window")?)?,
            "--query" => query = Some(value("--query")?.clone()),
            "--connections" => connections = parse(value("--connections")?)?,
            "--requests" => requests = parse(value("--requests")?)?,
            "--rate" => rate = Some(parse(value("--rate")?)?),
            "--retries" => retries = Some(parse(value("--retries")?)?),
            "--retry-base-ms" => retry_base_ms = Some(parse(value("--retry-base-ms")?)?),
            other if other.starts_with("--") => {
                return Err(format!("unknown flag '{other}' (see --help)"));
            }
            other => match command {
                None => command = Some(other.to_owned()),
                // `exec QUERY`: the first free argument after the command is
                // the query text.
                Some(_) if query.is_none() => query = Some(other.to_owned()),
                Some(_) => return Err(format!("unexpected argument '{other}'")),
            },
        }
    }
    if retry_base_ms.is_some() && retries.is_none() {
        return Err("--retry-base-ms requires --retries".into());
    }
    let retry = retries.map(|attempts| {
        let policy = RetryPolicy::new(attempts);
        match retry_base_ms {
            Some(ms) => policy.with_base(Duration::from_millis(ms)),
            None => policy,
        }
    });
    let endpoint = endpoint.ok_or("one of --unix / --tcp is required (see --help)")?;
    Ok(Some(Cli {
        endpoint,
        command: command.unwrap_or_else(|| "repl".to_owned()),
        query,
        options,
        window,
        connections,
        requests,
        rate,
        retry,
    }))
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cli) = parse_cli(args)? else {
        return Ok(());
    };
    match cli.command.as_str() {
        "repl" => repl(&cli),
        "exec" => exec_once(&cli),
        "stats" => {
            let stats = connect(&cli)?.stats().map_err(display)?;
            println!("{stats}");
            Ok(())
        }
        "metrics" => {
            let snapshot = connect(&cli)?.metrics().map_err(display)?;
            print!("{}", snapshot.text);
            Ok(())
        }
        "shutdown" => {
            connect(&cli)?.shutdown_server().map_err(display)?;
            println!("server draining");
            Ok(())
        }
        "bench" => bench(&cli),
        other => Err(format!("unknown command '{other}' (see --help)")),
    }
}

fn connect(cli: &Cli) -> Result<Connection, String> {
    let mut conn = cli.endpoint.connect().map_err(display)?;
    conn.set_window(cli.window);
    Ok(conn)
}

fn exec_once(cli: &Cli) -> Result<(), String> {
    let query = cli.query.as_deref().ok_or("exec requires a query")?;
    let mut conn = connect(cli)?;
    let stream = conn.execute_text(query, &cli.options).map_err(display)?;
    print_stream(stream).map_err(display)
}

fn print_stream(stream: AnswerStream<'_>) -> omega_client::Result<()> {
    print_stream_opts(stream, false)
}

fn print_stream_opts(mut stream: AnswerStream<'_>, want_profile: bool) -> omega_client::Result<()> {
    let mut count = 0usize;
    loop {
        match stream.next_answer() {
            Ok(Some(answer)) => {
                count += 1;
                println!("{}", render_answer(&answer));
            }
            Ok(None) => break,
            Err(err) => {
                eprintln!("error: {err}");
                return Ok(());
            }
        }
    }
    if let Some(stats) = stream.stats() {
        let drained = stream.finish_reason() == Some(FinishReason::Drained);
        println!(
            "-- {count} answer(s){}{}; {} tuples, {} lookups",
            if drained { " (drained)" } else { "" },
            if stats.degraded { " (degraded)" } else { "" },
            stats.tuples_processed,
            stats.neighbour_lookups,
        );
    }
    if want_profile {
        match stream.profile() {
            Some(profile) => print!("{profile}"),
            None => println!("-- no profile returned by the server"),
        }
    }
    Ok(())
}

fn render_answer(answer: &Answer) -> String {
    let bindings = answer
        .bindings
        .iter()
        .map(|(var, value)| format!("{var}={value}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!("[{}] {}", answer.distance, bindings)
}

fn repl(cli: &Cli) -> Result<(), String> {
    let mut conn = connect(cli)?;
    let mut options = cli.options.clone();
    println!(
        "connected to {} (protocol v{})",
        conn.server(),
        conn.version()
    );
    println!("type 'help' for commands");
    let stdin = std::io::stdin();
    loop {
        print!("omega> ");
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => return Ok(()),
            Ok(_) => {}
            Err(e) => return Err(e.to_string()),
        }
        let line = line.trim();
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((cmd, rest)) => (cmd, rest.trim()),
            None => (line, ""),
        };
        let outcome = match cmd {
            "" => Ok(()),
            "quit" | "exit" => return Ok(()),
            "help" => {
                println!(
                    "  prepare QUERY     compile a statement, print its id\n  \
                     exec QUERY|#ID    run a query or a prepared statement\n  \
                     profile QUERY|#ID run with per-phase timing and print the profile\n  \
                     close ID          drop a prepared statement\n  \
                     limit N|off       default answer limit\n  \
                     timeout MS|off    default deadline\n  \
                     policy P          overload policy: fail|degrade|shed\n  \
                     add T L H         add the edge T --L--> H (new epoch)\n  \
                     remove T L H      remove the edge T --L--> H (new epoch)\n  \
                     stats             daemon statistics\n  \
                     metrics           daemon metrics exposition\n  \
                     shutdown          drain the daemon\n  \
                     quit              leave"
                );
                Ok(())
            }
            "prepare" => conn.prepare(rest).map(|statement: Statement| {
                println!(
                    "#{} ({} conjunct(s), head: {})",
                    statement.id,
                    statement.conjuncts,
                    statement.head.join(", ")
                );
            }),
            "exec" | "profile" => {
                let want_profile = cmd == "profile";
                let request = if want_profile {
                    options.clone().with_profile(true)
                } else {
                    options.clone()
                };
                let started = match rest.strip_prefix('#') {
                    Some(id) => match id.trim().parse::<u64>() {
                        Ok(id) => conn.execute(omega_protocol::StatementRef::Id(id), &request),
                        Err(_) => {
                            println!("usage: {cmd} QUERY or {cmd} #ID");
                            continue;
                        }
                    },
                    None => conn.execute_text(rest, &request),
                };
                started.and_then(|stream| print_stream_opts(stream, want_profile))
            }
            "close" => match rest.parse::<u64>() {
                Ok(id) => conn.close(id).map(|()| println!("closed #{id}")),
                Err(_) => {
                    println!("usage: close ID");
                    continue;
                }
            },
            "limit" => {
                options.limit = rest.parse().ok();
                println!("limit: {:?}", options.limit);
                Ok(())
            }
            "timeout" => {
                options.timeout = rest.parse().ok().map(Duration::from_millis);
                println!("timeout: {:?}", options.timeout);
                Ok(())
            }
            "policy" => match parse_policy(rest) {
                Ok(policy) => {
                    options.on_overload = Some(policy);
                    println!("policy: {policy:?}");
                    Ok(())
                }
                Err(e) => {
                    println!("{e}");
                    continue;
                }
            },
            "add" | "remove" => {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                match parts.as_slice() {
                    [tail, label, head] => {
                        let mut mutation = Mutation::new();
                        if cmd == "add" {
                            mutation.add(tail, label, head);
                        } else {
                            mutation.remove(tail, label, head);
                        }
                        conn.mutate(&mutation).map(|report| {
                            println!(
                                "epoch {} (+{} edge(s), -{} edge(s))",
                                report.epoch, report.added, report.removed
                            );
                        })
                    }
                    _ => {
                        println!("usage: {cmd} TAIL LABEL HEAD");
                        continue;
                    }
                }
            }
            "stats" => conn.stats().map(|stats| println!("{stats}")),
            "metrics" => conn.metrics().map(|snapshot| print!("{}", snapshot.text)),
            "shutdown" => conn.shutdown_server().map(|()| println!("server draining")),
            other => {
                println!("unknown command '{other}' (try 'help')");
                Ok(())
            }
        };
        if let Err(err) = outcome {
            println!("error: {err}");
            if matches!(err, ClientError::Protocol(_)) {
                return Err("connection lost".into());
            }
        }
    }
}

fn bench(cli: &Cli) -> Result<(), String> {
    let query = cli.query.clone().ok_or("bench requires --query TEXT")?;
    let spec = LoadSpec {
        query,
        options: cli.options.clone(),
        connections: cli.connections,
        requests: cli.requests,
        mode: match cli.rate {
            Some(rate) => LoadMode::Open(rate),
            None => LoadMode::Closed,
        },
        retry: cli.retry,
    };
    let mode = match spec.mode {
        LoadMode::Closed => "closed".to_owned(),
        LoadMode::Open(rate) => format!("open @ {rate} req/s"),
    };
    eprintln!(
        "bench: {} connection(s), {} request(s), {mode} loop",
        spec.connections, spec.requests
    );
    let report = run_load(&cli.endpoint, &spec).map_err(display)?;
    println!(
        "issued {}  completed {}  drained {}  overloaded {}  failed {}  degraded {}",
        report.issued,
        report.completed,
        report.drained,
        report.overloaded,
        report.failed,
        report.degraded
    );
    println!(
        "answers {}  retries {}  throughput {:.1} req/s  elapsed {:.2}s",
        report.answers,
        report.retries,
        report.throughput(),
        report.elapsed.as_secs_f64()
    );
    println!(
        "latency p50 {:.3}ms  p99 {:.3}ms  p999 {:.3}ms  max {:.3}ms",
        report.p50.as_secs_f64() * 1e3,
        report.p99.as_secs_f64() * 1e3,
        report.p999.as_secs_f64() * 1e3,
        report.max.as_secs_f64() * 1e3,
    );
    // Cross-check the client-observed latency against the server's own
    // execute-frame histogram; a large gap points at queueing or transport
    // cost rather than evaluation time.
    if let Ok(snapshot) = connect(cli).and_then(|mut conn| conn.metrics().map_err(display)) {
        if let Some(server_p50_ns) = omega_obs::find_value(
            &snapshot.text,
            "omega_server_frame_ns{frame=\"execute\",quantile=\"0.5\"}",
        ) {
            println!(
                "server-side execute p50 {:.3}ms (client-observed {:.3}ms)",
                server_p50_ns / 1e6,
                report.p50.as_secs_f64() * 1e3,
            );
        }
    }
    Ok(())
}

fn parse<T: std::str::FromStr>(raw: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    raw.parse()
        .map_err(|e| format!("invalid value '{raw}': {e}"))
}

fn parse_policy(raw: &str) -> Result<OverloadPolicy, String> {
    match raw {
        "fail" => Ok(OverloadPolicy::Fail),
        "degrade" => Ok(OverloadPolicy::Degrade),
        "shed" => Ok(OverloadPolicy::Shed),
        other => Err(format!("unknown policy '{other}' (fail|degrade|shed)")),
    }
}

fn display<E: std::fmt::Display>(e: E) -> String {
    e.to_string()
}
