//! The serving-layer load generator: closed- and open-loop driving of an
//! `omega-server` daemon over concurrent connections, with per-query latency
//! percentiles (p50/p99/p999). Backs both the `omega-client bench`
//! subcommand and the benchmark harness's `serve` suite.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use omega_core::{ExecOptions, OmegaError};
use omega_obs::Histogram;
use omega_protocol::{ProtocolError, WireError};

use crate::{ClientError, Connection, Result, RetryPolicy};

/// Where the daemon listens.
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// Unix-domain socket path.
    Unix(PathBuf),
    /// TCP address (`host:port`).
    Tcp(String),
}

impl Endpoint {
    /// Opens a fresh connection to the endpoint.
    pub fn connect(&self) -> Result<Connection> {
        match self {
            Endpoint::Unix(path) => Connection::connect_unix(path),
            Endpoint::Tcp(addr) => Connection::connect_tcp(addr.as_str()),
        }
    }
}

/// Arrival discipline of the generated load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// Closed loop: each connection fires its next request the moment the
    /// previous one completes (latency = service time under self-induced
    /// load).
    Closed,
    /// Open loop at the given aggregate arrival rate (requests/second):
    /// arrivals are scheduled on a fixed grid regardless of completions, and
    /// latency is measured from the *scheduled* arrival, so queueing delay —
    /// the coordinated-omission blind spot of closed loops — is charged to
    /// the server.
    Open(f64),
}

/// One load-generation run.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Query text every request executes.
    pub query: String,
    /// Per-request execution options (deadline/limit/policy travel on the
    /// wire like any client's would).
    pub options: ExecOptions,
    /// Concurrent connections (one OS thread each).
    pub connections: usize,
    /// Total requests across all connections.
    pub requests: usize,
    /// Arrival discipline.
    pub mode: LoadMode,
    /// Retry transient failures (`Overloaded` rejections, broken pipes)
    /// with capped jittered backoff instead of counting them immediately.
    /// `None` preserves the fail-fast accounting.
    pub retry: Option<RetryPolicy>,
}

/// Aggregate result of a load run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Requests issued.
    pub issued: u64,
    /// Requests that streamed to a `Finished { Complete }`.
    pub completed: u64,
    /// Requests ended early by server drain (`Finished { Drained }`).
    pub drained: u64,
    /// Requests rejected with `Overloaded { retry_after }`.
    pub overloaded: u64,
    /// Requests failed with any other typed error.
    pub failed: u64,
    /// Completed requests whose evaluation degraded under pressure.
    pub degraded: u64,
    /// Completed requests whose result set was truncated (tuple budget or
    /// pool exhaustion under the `Degrade` policy).
    pub truncated: u64,
    /// Conjunct worker panics absorbed server-side, summed over completed
    /// requests.
    pub worker_panics: u64,
    /// Total answers received.
    pub answers: u64,
    /// Backoff-and-retry cycles performed (0 without a [`RetryPolicy`]).
    pub retries: u64,
    /// Latency percentiles over completed requests.
    pub p50: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// 99.9th percentile.
    pub p999: Duration,
    /// Slowest completed request.
    pub max: Duration,
    /// Wall-clock of the whole run.
    pub elapsed: Duration,
}

impl LoadReport {
    /// Completed requests per second over the run's wall-clock.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.completed as f64 / self.elapsed.as_secs_f64()
        }
    }
}

struct WorkerOutcome {
    /// Per-worker latency shard; merged additively into the run's histogram
    /// (the shards-merge property of [`Histogram`]).
    latencies: Histogram,
    report: LoadReport,
}

/// Runs the load described by `spec` against `endpoint`.
///
/// Every worker thread opens its own connection; a connection-level failure
/// reconnects once per request before counting the request as failed.
pub fn run_load(endpoint: &Endpoint, spec: &LoadSpec) -> Result<LoadReport> {
    let connections = spec.connections.max(1);
    let total = spec.requests as u64;
    let next = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let outcomes: Vec<WorkerOutcome> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(connections);
        for _ in 0..connections {
            let next = Arc::clone(&next);
            handles.push(scope.spawn(move || worker(endpoint, spec, total, next, start)));
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(outcome) => outcome,
                Err(_) => WorkerOutcome {
                    latencies: Histogram::new(),
                    report: LoadReport::default(),
                },
            })
            .collect()
    });

    let latencies = Histogram::new();
    let mut report = LoadReport::default();
    for outcome in outcomes {
        latencies.merge_from(&outcome.latencies);
        report.issued += outcome.report.issued;
        report.completed += outcome.report.completed;
        report.drained += outcome.report.drained;
        report.overloaded += outcome.report.overloaded;
        report.failed += outcome.report.failed;
        report.degraded += outcome.report.degraded;
        report.truncated += outcome.report.truncated;
        report.worker_panics += outcome.report.worker_panics;
        report.answers += outcome.report.answers;
        report.retries += outcome.report.retries;
    }
    let snapshot = latencies.snapshot();
    report.p50 = Duration::from_nanos(snapshot.p50());
    report.p99 = Duration::from_nanos(snapshot.p99());
    report.p999 = Duration::from_nanos(snapshot.p999());
    report.max = Duration::from_nanos(snapshot.max());
    report.elapsed = start.elapsed();
    Ok(report)
}

fn worker(
    endpoint: &Endpoint,
    spec: &LoadSpec,
    total: u64,
    next: Arc<AtomicU64>,
    start: Instant,
) -> WorkerOutcome {
    let mut conn = endpoint.connect().ok();
    let mut out = WorkerOutcome {
        latencies: Histogram::new(),
        report: LoadReport::default(),
    };
    loop {
        let seq = next.fetch_add(1, Ordering::SeqCst);
        if seq >= total {
            break;
        }
        // Under the open-loop discipline request `seq` arrives at a fixed
        // point on the schedule; the latency clock starts there even if the
        // worker (or server) is running behind.
        let arrival = match spec.mode {
            LoadMode::Closed => Instant::now(),
            LoadMode::Open(rate) => {
                let at = start + Duration::from_secs_f64(seq as f64 / rate.max(1e-9));
                if let Some(wait) = at.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
                at
            }
        };
        out.report.issued += 1;
        // Per-request jitter stream: fold the request sequence number into
        // the policy seed so concurrent workers decorrelate.
        let retry = spec.retry.map(|p| p.with_seed(p.seed ^ seq));
        let mut attempt = 0u32;
        let success = loop {
            if conn.is_none() {
                conn = endpoint.connect().ok();
            }
            let err = match conn.as_mut() {
                Some(active) => match active.run(&spec.query, &spec.options) {
                    Ok(ok) => break Some(ok),
                    Err(err) => {
                        if !matches!(err, ClientError::Remote(_)) {
                            // Transport/protocol failures poison the
                            // connection; typed failures leave it usable.
                            conn = None;
                        }
                        err
                    }
                },
                None => ClientError::Protocol(ProtocolError::Io("connect failed".into())),
            };
            match retry.and_then(|p| p.backoff(&err, attempt)) {
                Some(backoff) => {
                    out.report.retries += 1;
                    if backoff.reconnect {
                        conn = None;
                    }
                    std::thread::sleep(backoff.delay);
                    attempt += 1;
                }
                None => {
                    match err {
                        ClientError::Remote(WireError::Engine(OmegaError::Overloaded {
                            ..
                        })) => out.report.overloaded += 1,
                        _ => out.report.failed += 1,
                    }
                    break None;
                }
            }
        };
        if let Some((answers, stats)) = success {
            out.report.completed += 1;
            out.report.answers += answers.len() as u64;
            if stats.degraded {
                out.report.degraded += 1;
            }
            if stats.truncation.is_some() {
                out.report.truncated += 1;
            }
            out.report.worker_panics += stats.worker_panics;
            // Retried requests are charged from their scheduled arrival, so
            // backoff time counts against latency — no coordinated omission.
            out.latencies.observe(arrival.elapsed());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_track_exact_ranks_within_bucket_error() {
        // The load generator's percentiles come from the shared log-scale
        // histogram; against an exact sort-based rank they may only be off
        // by one bucket width (≤ 1/8 relative).
        let hist = Histogram::new();
        for us in 1..=1000u64 {
            hist.observe(Duration::from_micros(us));
        }
        let snapshot = hist.snapshot();
        for (got, exact_us) in [
            (snapshot.p50(), 500u64),
            (snapshot.p99(), 990),
            (snapshot.p999(), 999),
        ] {
            let exact = exact_us * 1_000;
            assert!(
                got >= exact && got <= exact + exact / 8 + 1,
                "histogram gave {got}ns for exact {exact}ns"
            );
        }
        assert_eq!(Histogram::new().snapshot().p50(), 0, "empty is zero");
    }

    #[test]
    fn throughput_is_completed_over_elapsed() {
        let report = LoadReport {
            completed: 100,
            elapsed: Duration::from_secs(2),
            ..LoadReport::default()
        };
        assert!((report.throughput() - 50.0).abs() < 1e-9);
    }
}
