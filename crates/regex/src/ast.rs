//! Abstract syntax tree for RPQ regular expressions.

use std::collections::BTreeSet;
use std::fmt;

/// One symbol of a path word: an edge label together with the traversal
/// direction (`inverse = true` means the edge is traversed target→source).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol {
    /// The edge label.
    pub label: String,
    /// Whether the edge is traversed in the reverse direction (`a-`).
    pub inverse: bool,
}

impl Symbol {
    /// Forward traversal of `label`.
    pub fn forward(label: impl Into<String>) -> Symbol {
        Symbol {
            label: label.into(),
            inverse: false,
        }
    }

    /// Reverse traversal of `label`.
    pub fn inverse(label: impl Into<String>) -> Symbol {
        Symbol {
            label: label.into(),
            inverse: true,
        }
    }

    /// The same label traversed in the opposite direction.
    pub fn flipped(&self) -> Symbol {
        Symbol {
            label: self.label.clone(),
            inverse: !self.inverse,
        }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.label, if self.inverse { "-" } else { "" })
    }
}

/// A regular path query expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RpqRegex {
    /// The empty word ε.
    Epsilon,
    /// A single edge label, possibly traversed in reverse (`a` or `a-`).
    Label(Symbol),
    /// `_` — matches any single edge label (forward traversal).
    Wildcard,
    /// Concatenation `R1 . R2`.
    Concat(Box<RpqRegex>, Box<RpqRegex>),
    /// Alternation `R1 | R2`.
    Alt(Box<RpqRegex>, Box<RpqRegex>),
    /// Kleene star `R*`.
    Star(Box<RpqRegex>),
    /// One-or-more `R+`.
    Plus(Box<RpqRegex>),
}

impl RpqRegex {
    /// A forward label atom.
    pub fn label(name: impl Into<String>) -> RpqRegex {
        RpqRegex::Label(Symbol::forward(name))
    }

    /// A reverse label atom (`a-`).
    pub fn inverse_label(name: impl Into<String>) -> RpqRegex {
        RpqRegex::Label(Symbol::inverse(name))
    }

    /// Concatenation of the given expressions (ε if empty).
    pub fn concat_all(parts: impl IntoIterator<Item = RpqRegex>) -> RpqRegex {
        let mut iter = parts.into_iter();
        let first = match iter.next() {
            Some(p) => p,
            None => return RpqRegex::Epsilon,
        };
        iter.fold(first, |acc, p| RpqRegex::Concat(Box::new(acc), Box::new(p)))
    }

    /// Alternation of the given expressions.
    ///
    /// # Panics
    /// Panics if `parts` is empty.
    pub fn alt_all(parts: impl IntoIterator<Item = RpqRegex>) -> RpqRegex {
        let mut iter = parts.into_iter();
        // The panic is this constructor's documented contract (an empty
        // alternation has no regex representation), not a runtime failure.
        #[allow(clippy::expect_used)]
        let first = iter.next().expect("alt_all requires at least one branch");
        iter.fold(first, |acc, p| RpqRegex::Alt(Box::new(acc), Box::new(p)))
    }

    /// The reversal `R-` of this expression: `w` matches `R` iff the reversed
    /// word (with every symbol flipped) matches `R-`.
    ///
    /// Used to transform a conjunct `(?X, R, C)` into `(C, R-, ?X)`
    /// (Case 2 of the paper's `Open` procedure).
    pub fn reverse(&self) -> RpqRegex {
        match self {
            RpqRegex::Epsilon => RpqRegex::Epsilon,
            RpqRegex::Label(sym) => RpqRegex::Label(sym.flipped()),
            // `_` matches any forward label; its reversal matches any
            // reverse-traversed label. We keep `_` symmetric here (it denotes
            // "any constant"), matching the paper's usage where `_` only
            // appears at the top level of simple queries.
            RpqRegex::Wildcard => RpqRegex::Wildcard,
            RpqRegex::Concat(a, b) => {
                RpqRegex::Concat(Box::new(b.reverse()), Box::new(a.reverse()))
            }
            RpqRegex::Alt(a, b) => RpqRegex::Alt(Box::new(a.reverse()), Box::new(b.reverse())),
            RpqRegex::Star(a) => RpqRegex::Star(Box::new(a.reverse())),
            RpqRegex::Plus(a) => RpqRegex::Plus(Box::new(a.reverse())),
        }
    }

    /// All edge-label names mentioned in the expression (ignoring direction).
    pub fn alphabet(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_labels(&mut out);
        out
    }

    fn collect_labels(&self, out: &mut BTreeSet<String>) {
        match self {
            RpqRegex::Epsilon | RpqRegex::Wildcard => {}
            RpqRegex::Label(sym) => {
                out.insert(sym.label.clone());
            }
            RpqRegex::Concat(a, b) | RpqRegex::Alt(a, b) => {
                a.collect_labels(out);
                b.collect_labels(out);
            }
            RpqRegex::Star(a) | RpqRegex::Plus(a) => a.collect_labels(out),
        }
    }

    /// Whether the expression can match the empty word.
    pub fn is_nullable(&self) -> bool {
        match self {
            RpqRegex::Epsilon | RpqRegex::Star(_) => true,
            RpqRegex::Label(_) | RpqRegex::Wildcard => false,
            RpqRegex::Concat(a, b) => a.is_nullable() && b.is_nullable(),
            RpqRegex::Alt(a, b) => a.is_nullable() || b.is_nullable(),
            RpqRegex::Plus(a) => a.is_nullable(),
        }
    }

    /// The branches of a top-level alternation, flattened.
    ///
    /// `a|b|c` yields `[a, b, c]`; a non-alternation yields a single-element
    /// vector. Used by the "replacing alternation by disjunction" optimisation
    /// (Section 4.3 of the paper).
    pub fn top_level_branches(&self) -> Vec<&RpqRegex> {
        match self {
            RpqRegex::Alt(a, b) => {
                let mut out = a.top_level_branches();
                out.extend(b.top_level_branches());
                out
            }
            other => vec![other],
        }
    }

    /// Number of AST nodes (a rough size measure used by tests/benches).
    pub fn size(&self) -> usize {
        match self {
            RpqRegex::Epsilon | RpqRegex::Label(_) | RpqRegex::Wildcard => 1,
            RpqRegex::Concat(a, b) | RpqRegex::Alt(a, b) => 1 + a.size() + b.size(),
            RpqRegex::Star(a) | RpqRegex::Plus(a) => 1 + a.size(),
        }
    }

    fn precedence(&self) -> u8 {
        match self {
            RpqRegex::Alt(..) => 0,
            RpqRegex::Concat(..) => 1,
            RpqRegex::Star(_) | RpqRegex::Plus(_) => 2,
            RpqRegex::Epsilon | RpqRegex::Label(_) | RpqRegex::Wildcard => 3,
        }
    }

    fn fmt_with_parens(&self, f: &mut fmt::Formatter<'_>, parent_prec: u8) -> fmt::Result {
        let prec = self.precedence();
        let needs_parens = prec < parent_prec;
        if needs_parens {
            write!(f, "(")?;
        }
        match self {
            RpqRegex::Epsilon => write!(f, "()")?,
            RpqRegex::Label(sym) => write!(f, "{sym}")?,
            RpqRegex::Wildcard => write!(f, "_")?,
            RpqRegex::Concat(a, b) => {
                a.fmt_with_parens(f, 1)?;
                write!(f, ".")?;
                b.fmt_with_parens(f, 1)?;
            }
            RpqRegex::Alt(a, b) => {
                a.fmt_with_parens(f, 0)?;
                write!(f, "|")?;
                b.fmt_with_parens(f, 0)?;
            }
            RpqRegex::Star(a) => {
                a.fmt_with_parens(f, 3)?;
                write!(f, "*")?;
            }
            RpqRegex::Plus(a) => {
                a.fmt_with_parens(f, 3)?;
                write!(f, "+")?;
            }
        }
        if needs_parens {
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl fmt::Display for RpqRegex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_with_parens(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_display_and_flip() {
        assert_eq!(Symbol::forward("knows").to_string(), "knows");
        assert_eq!(Symbol::inverse("knows").to_string(), "knows-");
        assert_eq!(Symbol::forward("a").flipped(), Symbol::inverse("a"));
    }

    #[test]
    fn concat_all_and_alt_all() {
        let r = RpqRegex::concat_all([RpqRegex::label("a"), RpqRegex::label("b")]);
        assert_eq!(r.to_string(), "a.b");
        assert_eq!(RpqRegex::concat_all([]), RpqRegex::Epsilon);
        let r = RpqRegex::alt_all([
            RpqRegex::label("a"),
            RpqRegex::label("b"),
            RpqRegex::label("c"),
        ]);
        assert_eq!(r.to_string(), "a|b|c");
    }

    #[test]
    fn reverse_of_concat_swaps_and_flips() {
        let r = RpqRegex::concat_all([
            RpqRegex::inverse_label("isLocatedIn"),
            RpqRegex::label("gradFrom"),
        ]);
        assert_eq!(r.reverse().to_string(), "gradFrom-.isLocatedIn");
        // reversal is an involution
        assert_eq!(r.reverse().reverse(), r);
    }

    #[test]
    fn nullability() {
        assert!(RpqRegex::Epsilon.is_nullable());
        assert!(!RpqRegex::label("a").is_nullable());
        assert!(RpqRegex::Star(Box::new(RpqRegex::label("a"))).is_nullable());
        assert!(!RpqRegex::Plus(Box::new(RpqRegex::label("a"))).is_nullable());
        assert!(RpqRegex::Plus(Box::new(RpqRegex::Epsilon)).is_nullable());
    }

    #[test]
    fn alphabet_collects_labels() {
        let r = RpqRegex::concat_all([
            RpqRegex::label("a"),
            RpqRegex::Alt(
                Box::new(RpqRegex::inverse_label("b")),
                Box::new(RpqRegex::Wildcard),
            ),
        ]);
        let alpha: Vec<_> = r.alphabet().into_iter().collect();
        assert_eq!(alpha, vec!["a".to_owned(), "b".to_owned()]);
    }

    #[test]
    fn top_level_branches_flatten() {
        let r = RpqRegex::alt_all([
            RpqRegex::label("a"),
            RpqRegex::label("b"),
            RpqRegex::label("c"),
        ]);
        assert_eq!(r.top_level_branches().len(), 3);
        assert_eq!(RpqRegex::label("a").top_level_branches().len(), 1);
    }

    #[test]
    fn display_inserts_necessary_parentheses() {
        let r = RpqRegex::Concat(
            Box::new(RpqRegex::Alt(
                Box::new(RpqRegex::label("a")),
                Box::new(RpqRegex::label("b")),
            )),
            Box::new(RpqRegex::label("c")),
        );
        assert_eq!(r.to_string(), "(a|b).c");
        let r = RpqRegex::Star(Box::new(RpqRegex::Concat(
            Box::new(RpqRegex::label("a")),
            Box::new(RpqRegex::label("b")),
        )));
        assert_eq!(r.to_string(), "(a.b)*");
    }

    #[test]
    fn size_counts_nodes() {
        let r = RpqRegex::Concat(
            Box::new(RpqRegex::label("a")),
            Box::new(RpqRegex::Star(Box::new(RpqRegex::label("b")))),
        );
        assert_eq!(r.size(), 4);
    }
}
