//! # omega-regex
//!
//! Regular path query (RPQ) regular expressions over edge labels, as defined
//! in Section 2 of the paper:
//!
//! ```text
//! R :=  ε | a | a- | _ | (R1 . R2) | (R1 | R2) | R* | R+
//! ```
//!
//! where `a` is any edge label (including `type`), `a-` traverses an edge in
//! the reverse direction and `_` denotes the disjunction of all labels.
//!
//! This crate provides the AST ([`RpqRegex`]), a parser for the concrete
//! syntax used in the paper's query sets (e.g.
//! `isLocatedIn-.gradFrom`, `next+|(prereq+.next)`), a pretty-printer that
//! round-trips through the parser, and a naive matcher used as a test oracle
//! by the automata crate.

pub mod ast;
pub mod error;
pub mod oracle;
pub mod parser;

pub use ast::{RpqRegex, Symbol};
pub use error::RegexParseError;
pub use parser::parse;
