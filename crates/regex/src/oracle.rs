//! A naive, obviously-correct matcher for RPQ regular expressions.
//!
//! This is *not* used by the query evaluator — it exists as a test oracle:
//! the automata crate checks that NFA construction, ε-removal and reversal
//! preserve the language by comparing word membership against this matcher.

use std::collections::BTreeSet;

use crate::ast::{RpqRegex, Symbol};

/// Whether `word` (a sequence of traversal symbols) is in the language of
/// `regex`.
pub fn matches(regex: &RpqRegex, word: &[Symbol]) -> bool {
    end_positions(regex, word, 0).contains(&word.len())
}

/// The set of positions `j` such that `regex` matches `word[start..j]`.
fn end_positions(regex: &RpqRegex, word: &[Symbol], start: usize) -> BTreeSet<usize> {
    match regex {
        RpqRegex::Epsilon => [start].into_iter().collect(),
        RpqRegex::Label(sym) => {
            if word.get(start) == Some(sym) {
                [start + 1].into_iter().collect()
            } else {
                BTreeSet::new()
            }
        }
        RpqRegex::Wildcard => {
            // `_` is the disjunction of all labels, traversed forwards.
            match word.get(start) {
                Some(sym) if !sym.inverse => [start + 1].into_iter().collect(),
                _ => BTreeSet::new(),
            }
        }
        RpqRegex::Concat(a, b) => {
            let mut out = BTreeSet::new();
            for mid in end_positions(a, word, start) {
                out.extend(end_positions(b, word, mid));
            }
            out
        }
        RpqRegex::Alt(a, b) => {
            let mut out = end_positions(a, word, start);
            out.extend(end_positions(b, word, start));
            out
        }
        RpqRegex::Star(a) => {
            let mut out: BTreeSet<usize> = [start].into_iter().collect();
            loop {
                let mut new = BTreeSet::new();
                for &pos in &out {
                    for next in end_positions(a, word, pos) {
                        if !out.contains(&next) {
                            new.insert(next);
                        }
                    }
                }
                if new.is_empty() {
                    return out;
                }
                out.extend(new);
            }
        }
        RpqRegex::Plus(a) => {
            let star = RpqRegex::Star(a.clone());
            let mut out = BTreeSet::new();
            for mid in end_positions(a, word, start) {
                out.extend(end_positions(&star, word, mid));
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn word(specs: &[(&str, bool)]) -> Vec<Symbol> {
        specs
            .iter()
            .map(|&(l, inv)| Symbol {
                label: l.to_owned(),
                inverse: inv,
            })
            .collect()
    }

    #[test]
    fn label_and_inverse() {
        let r = parse("a").unwrap();
        assert!(matches(&r, &word(&[("a", false)])));
        assert!(!matches(&r, &word(&[("a", true)])));
        assert!(!matches(&r, &word(&[("b", false)])));
        assert!(!matches(&r, &[]));
        let r = parse("a-").unwrap();
        assert!(matches(&r, &word(&[("a", true)])));
        assert!(!matches(&r, &word(&[("a", false)])));
    }

    #[test]
    fn concatenation_and_alternation() {
        let r = parse("a.b|c").unwrap();
        assert!(matches(&r, &word(&[("a", false), ("b", false)])));
        assert!(matches(&r, &word(&[("c", false)])));
        assert!(!matches(&r, &word(&[("a", false)])));
    }

    #[test]
    fn star_and_plus() {
        let star = parse("a*").unwrap();
        assert!(matches(&star, &[]));
        assert!(matches(&star, &word(&[("a", false); 5])));
        assert!(!matches(&star, &word(&[("a", false), ("b", false)])));
        let plus = parse("a+").unwrap();
        assert!(!matches(&plus, &[]));
        assert!(matches(&plus, &word(&[("a", false); 3])));
    }

    #[test]
    fn wildcard_matches_any_forward_label() {
        let r = parse("_.b").unwrap();
        assert!(matches(&r, &word(&[("anything", false), ("b", false)])));
        assert!(!matches(&r, &word(&[("anything", true), ("b", false)])));
    }

    #[test]
    fn epsilon_matches_only_empty() {
        let r = parse("()").unwrap();
        assert!(matches(&r, &[]));
        assert!(!matches(&r, &word(&[("a", false)])));
    }

    #[test]
    fn paper_query_shape() {
        // prereq*.next+.prereq
        let r = parse("prereq*.next+.prereq").unwrap();
        assert!(matches(&r, &word(&[("next", false), ("prereq", false)])));
        assert!(matches(
            &r,
            &word(&[
                ("prereq", false),
                ("prereq", false),
                ("next", false),
                ("next", false),
                ("prereq", false)
            ])
        ));
        assert!(!matches(&r, &word(&[("prereq", false), ("prereq", false)])));
    }

    #[test]
    fn reversal_agrees_with_reversed_words() {
        let r = parse("a.b-.c*").unwrap();
        let rev = r.reverse();
        let w = word(&[("a", false), ("b", true), ("c", false), ("c", false)]);
        let mut rev_word: Vec<Symbol> = w.iter().map(Symbol::flipped).collect();
        rev_word.reverse();
        assert!(matches(&r, &w));
        assert!(matches(&rev, &rev_word));
    }
}
