//! Recursive-descent parser for the concrete RPQ regular-expression syntax
//! used in the paper's query sets.
//!
//! Grammar (whitespace is ignored):
//!
//! ```text
//! alt     := concat ('|' concat)*
//! concat  := postfix ('.' postfix)*
//! postfix := atom ('*' | '+')*
//! atom    := LABEL '-'? | '_' | '(' ')' | '(' alt ')'
//! LABEL   := [A-Za-z0-9_:][A-Za-z0-9_:']*   (but a lone '_' is the wildcard)
//! ```

use crate::ast::{RpqRegex, Symbol};
use crate::error::RegexParseError;

/// Parses an RPQ regular expression from its textual form.
///
/// ```
/// use omega_regex::parse;
/// let r = parse("isLocatedIn-.gradFrom").unwrap();
/// assert_eq!(r.to_string(), "isLocatedIn-.gradFrom");
/// let r = parse("next+|(prereq+.next)").unwrap();
/// assert_eq!(r.top_level_branches().len(), 2);
/// ```
pub fn parse(input: &str) -> Result<RpqRegex, RegexParseError> {
    let mut parser = Parser {
        chars: input.char_indices().collect(),
        pos: 0,
        input_len: input.len(),
    };
    let expr = parser.parse_alt()?;
    parser.skip_ws();
    if parser.pos < parser.chars.len() {
        let (offset, ch) = parser.chars[parser.pos];
        return Err(RegexParseError::new(
            offset,
            format!("unexpected character {ch:?}"),
        ));
    }
    Ok(expr)
}

struct Parser {
    chars: Vec<(usize, char)>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn offset(&self) -> usize {
        self.chars.get(self.pos).map_or(self.input_len, |&(o, _)| o)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn parse_alt(&mut self) -> Result<RpqRegex, RegexParseError> {
        let mut expr = self.parse_concat()?;
        loop {
            self.skip_ws();
            if self.peek() == Some('|') {
                self.bump();
                let rhs = self.parse_concat()?;
                expr = RpqRegex::Alt(Box::new(expr), Box::new(rhs));
            } else {
                return Ok(expr);
            }
        }
    }

    fn parse_concat(&mut self) -> Result<RpqRegex, RegexParseError> {
        let mut expr = self.parse_postfix()?;
        loop {
            self.skip_ws();
            if self.peek() == Some('.') {
                self.bump();
                let rhs = self.parse_postfix()?;
                expr = RpqRegex::Concat(Box::new(expr), Box::new(rhs));
            } else {
                return Ok(expr);
            }
        }
    }

    fn parse_postfix(&mut self) -> Result<RpqRegex, RegexParseError> {
        let mut expr = self.parse_atom()?;
        loop {
            self.skip_ws();
            match self.peek() {
                Some('*') => {
                    self.bump();
                    expr = RpqRegex::Star(Box::new(expr));
                }
                Some('+') => {
                    self.bump();
                    expr = RpqRegex::Plus(Box::new(expr));
                }
                _ => return Ok(expr),
            }
        }
    }

    fn parse_atom(&mut self) -> Result<RpqRegex, RegexParseError> {
        self.skip_ws();
        match self.peek() {
            Some('(') => {
                self.bump();
                self.skip_ws();
                if self.peek() == Some(')') {
                    self.bump();
                    return Ok(RpqRegex::Epsilon);
                }
                let inner = self.parse_alt()?;
                self.skip_ws();
                if self.peek() == Some(')') {
                    self.bump();
                    Ok(inner)
                } else {
                    Err(RegexParseError::new(self.offset(), "expected ')'"))
                }
            }
            Some(c) if is_label_char(c) => {
                let start = self.offset();
                let mut label = String::new();
                while let Some(c) = self.peek() {
                    if !is_label_char(c) {
                        break;
                    }
                    self.bump();
                    label.push(c);
                }
                if label == "_" {
                    return Ok(RpqRegex::Wildcard);
                }
                if label.is_empty() {
                    return Err(RegexParseError::new(start, "expected a label"));
                }
                // Optional inverse marker. Whitespace is not allowed between
                // the label and its '-' so that `a - b` stays an error rather
                // than silently parsing.
                if self.peek() == Some('-') {
                    self.bump();
                    Ok(RpqRegex::Label(Symbol::inverse(label)))
                } else {
                    Ok(RpqRegex::Label(Symbol::forward(label)))
                }
            }
            Some(c) => Err(RegexParseError::new(
                self.offset(),
                format!("unexpected character {c:?}"),
            )),
            None => Err(RegexParseError::new(
                self.offset(),
                "unexpected end of expression",
            )),
        }
    }
}

fn is_label_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == ':' || c == '\''
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::RpqRegex as R;

    #[test]
    fn parses_single_labels() {
        assert_eq!(parse("knows").unwrap(), R::label("knows"));
        assert_eq!(parse("knows-").unwrap(), R::inverse_label("knows"));
        assert_eq!(parse("_").unwrap(), R::Wildcard);
        assert_eq!(parse("()").unwrap(), R::Epsilon);
    }

    #[test]
    fn parses_paper_queries() {
        // L4All Q9
        let q9 = parse("prereq*.next+.prereq").unwrap();
        assert_eq!(q9.to_string(), "prereq*.next+.prereq");
        // L4All Q7
        let q7 = parse("next+|(prereq+.next)").unwrap();
        assert_eq!(q7.top_level_branches().len(), 2);
        // YAGO Q9
        let y9 = parse("(livesIn-.hasCurrency)|(locatedIn-.gradFrom)").unwrap();
        assert_eq!(y9.top_level_branches().len(), 2);
        // YAGO Q2
        let y2 = parse("hasChild.gradFrom.gradFrom-.hasWonPrize").unwrap();
        assert_eq!(y2.alphabet().len(), 3);
    }

    #[test]
    fn precedence_star_binds_tighter_than_concat() {
        let r = parse("a.b*").unwrap();
        assert_eq!(
            r,
            R::Concat(
                Box::new(R::label("a")),
                Box::new(R::Star(Box::new(R::label("b"))))
            )
        );
        let r = parse("(a.b)*").unwrap();
        assert_eq!(
            r,
            R::Star(Box::new(R::Concat(
                Box::new(R::label("a")),
                Box::new(R::label("b"))
            )))
        );
    }

    #[test]
    fn precedence_concat_binds_tighter_than_alt() {
        let r = parse("a.b|c").unwrap();
        assert_eq!(
            r,
            R::Alt(
                Box::new(R::Concat(Box::new(R::label("a")), Box::new(R::label("b")))),
                Box::new(R::label("c"))
            )
        );
    }

    #[test]
    fn whitespace_is_ignored() {
        assert_eq!(parse(" a . b ").unwrap(), parse("a.b").unwrap());
        assert_eq!(parse("a | b").unwrap(), parse("a|b").unwrap());
    }

    #[test]
    fn labels_with_underscores_and_colons() {
        assert_eq!(parse("rdf:type").unwrap(), R::label("rdf:type"));
        assert_eq!(
            parse("wordnet_city-").unwrap(),
            R::inverse_label("wordnet_city")
        );
    }

    #[test]
    fn error_positions() {
        assert!(parse("").is_err());
        assert!(parse("a.").is_err());
        assert!(parse("(a").is_err());
        assert!(parse("a||b").is_err());
        assert!(parse("a b").is_err());
        assert!(parse("*a").is_err());
        let err = parse("a.#b").unwrap_err();
        assert_eq!(err.position, 2);
    }

    #[test]
    fn display_round_trips() {
        for text in [
            "a",
            "a-",
            "a.b.c",
            "a|b|c",
            "(a|b).c",
            "a.(b|c)*",
            "type-.job-.next",
            "prereq*.next+.prereq",
            "(livesIn-.hasCurrency)|(locatedIn-.gradFrom)",
        ] {
            let parsed = parse(text).unwrap();
            let reparsed = parse(&parsed.to_string()).unwrap();
            assert_eq!(parsed, reparsed, "round trip failed for {text}");
        }
    }
}
