//! Parse errors for RPQ regular expressions.

use std::fmt;

/// An error encountered while parsing an RPQ regular expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexParseError {
    /// Byte offset in the input at which the error occurred.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl RegexParseError {
    pub(crate) fn new(position: usize, message: impl Into<String>) -> Self {
        RegexParseError {
            position,
            message: message.into(),
        }
    }
}

impl fmt::Display for RegexParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "regular expression parse error at offset {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for RegexParseError {}
