//! The `Omega` engine: the public entry point tying the query language, the
//! compiled automata and the ranked evaluator together.

use std::collections::BTreeMap;

use omega_graph::GraphStore;
use omega_ontology::Ontology;

use crate::answer::Answer;
use crate::error::Result;
use crate::eval::conjunct::ConjunctEvaluator;
use crate::eval::disjunction::DisjunctionEvaluator;
use crate::eval::distance_aware::DistanceAwareEvaluator;
use crate::eval::plan::compile_conjunct;
use crate::eval::rank_join::{JoinInput, RankJoin};
use crate::eval::{AnswerStream, EvalOptions, EvalStats};
use crate::query::ast::{Conjunct, Query, QueryMode, Term};
use crate::query::parser::parse_query;

/// The Omega query engine: a data graph, its ontology, and evaluation
/// options.
///
/// ```
/// use omega_core::Omega;
/// use omega_graph::GraphStore;
/// use omega_ontology::Ontology;
///
/// let mut graph = GraphStore::new();
/// graph.add_triple("alice", "knows", "bob");
/// graph.add_triple("bob", "knows", "carol");
/// let omega = Omega::new(graph, Ontology::new());
///
/// let answers = omega.execute("(?X) <- (alice, knows+, ?X)", None).unwrap();
/// assert_eq!(answers.len(), 2);
/// assert_eq!(answers[0].distance, 0);
/// ```
pub struct Omega {
    graph: GraphStore,
    ontology: Ontology,
    options: EvalOptions,
}

impl Omega {
    /// Creates an engine with default [`EvalOptions`].
    pub fn new(graph: GraphStore, ontology: Ontology) -> Omega {
        Omega::with_options(graph, ontology, EvalOptions::default())
    }

    /// Creates an engine with explicit options.
    ///
    /// The graph is frozen into its CSR representation here: the engine owns
    /// it and never mutates it, so every query it evaluates runs against the
    /// packed adjacency arrays.
    pub fn with_options(mut graph: GraphStore, ontology: Ontology, options: EvalOptions) -> Omega {
        graph.freeze();
        Omega {
            graph,
            ontology,
            options,
        }
    }

    /// The data graph.
    pub fn graph(&self) -> &GraphStore {
        &self.graph
    }

    /// The ontology.
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// The evaluation options.
    pub fn options(&self) -> &EvalOptions {
        &self.options
    }

    /// Mutable access to the evaluation options (e.g. to toggle the
    /// Section 4.3 optimisations between runs).
    pub fn options_mut(&mut self) -> &mut EvalOptions {
        &mut self.options
    }

    /// Parses and executes a query, returning at most `limit` answers in
    /// non-decreasing distance order (all answers when `limit` is `None`).
    pub fn execute(&self, query_text: &str, limit: Option<usize>) -> Result<Vec<Answer>> {
        let query = parse_query(query_text)?;
        self.execute_query(&query, limit)
    }

    /// Executes an already parsed query.
    pub fn execute_query(&self, query: &Query, limit: Option<usize>) -> Result<Vec<Answer>> {
        let mut stream = self.stream(query)?;
        stream.collect(limit)
    }

    /// Prepares an incremental answer stream for `query`.
    pub fn stream(&self, query: &Query) -> Result<QueryStream<'_>> {
        query.validate()?;
        let mut inputs = Vec::with_capacity(query.conjuncts.len());
        for conjunct in &query.conjuncts {
            inputs.push(self.conjunct_input(conjunct)?);
        }
        Ok(QueryStream {
            graph: &self.graph,
            head: query.head.clone(),
            join: RankJoin::new(inputs),
            emitted: std::collections::HashSet::new(),
        })
    }

    /// Builds the best single-conjunct stream for `conjunct` according to the
    /// enabled optimisations.
    pub fn conjunct_stream<'a>(
        &'a self,
        conjunct: &Conjunct,
    ) -> Result<Box<dyn AnswerStream + 'a>> {
        if self.options.disjunction_decomposition && conjunct.mode == QueryMode::Approx {
            if let Some(decomposed) = DisjunctionEvaluator::try_new(
                conjunct,
                &self.graph,
                &self.ontology,
                self.options.clone(),
            )? {
                return Ok(Box::new(decomposed));
            }
        }
        let plan = compile_conjunct(conjunct, &self.graph, &self.ontology, &self.options)?;
        if self.options.distance_aware && conjunct.mode != QueryMode::Exact {
            return Ok(Box::new(DistanceAwareEvaluator::new(
                plan,
                &self.graph,
                &self.ontology,
                self.options.clone(),
            )));
        }
        Ok(Box::new(ConjunctEvaluator::new(
            plan,
            &self.graph,
            &self.ontology,
            self.options.clone(),
            None,
        )))
    }

    fn conjunct_input<'a>(&'a self, conjunct: &Conjunct) -> Result<JoinInput<'a>> {
        let stream = self.conjunct_stream(conjunct)?;
        let subject_var = conjunct.subject.as_variable().map(str::to_owned);
        let object_var = conjunct.object.as_variable().map(str::to_owned);
        Ok(JoinInput::new(stream, subject_var, object_var))
    }
}

/// An incremental stream of [`Answer`]s for one query.
pub struct QueryStream<'a> {
    graph: &'a GraphStore,
    head: Vec<String>,
    join: RankJoin<'a>,
    emitted: std::collections::HashSet<Vec<(String, omega_graph::NodeId)>>,
}

impl QueryStream<'_> {
    /// The next answer, or `Ok(None)` when the stream is exhausted.
    ///
    /// Not an `Iterator` because production is fallible (`Result`).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Answer>> {
        loop {
            let Some((bindings, distance)) = self.join.get_next()? else {
                return Ok(None);
            };
            // Project onto the head variables and deduplicate projections.
            let mut projected: Vec<(String, omega_graph::NodeId)> = Vec::new();
            for var in &self.head {
                if let Some((_, node)) = bindings.iter().find(|(name, _)| name == var) {
                    projected.push((var.clone(), *node));
                }
            }
            if !self.emitted.insert(projected.clone()) {
                continue;
            }
            let bindings: BTreeMap<String, String> = projected
                .into_iter()
                .map(|(var, node)| (var, self.graph.node_label(node).to_owned()))
                .collect();
            return Ok(Some(Answer { bindings, distance }));
        }
    }

    /// Collects up to `limit` answers (all of them when `None`).
    pub fn collect(&mut self, limit: Option<usize>) -> Result<Vec<Answer>> {
        let mut out = Vec::new();
        while limit.is_none_or(|l| out.len() < l) {
            match self.next()? {
                Some(answer) => out.push(answer),
                None => break,
            }
        }
        Ok(out)
    }

    /// Evaluation statistics accumulated so far across all conjuncts.
    pub fn stats(&self) -> EvalStats {
        self.join.stats()
    }
}

/// Convenience: the variables a conjunct binds, used by callers that drive
/// [`crate::eval::ConjunctEvaluator`] directly.
pub fn conjunct_variables(conjunct: &Conjunct) -> Vec<&str> {
    [&conjunct.subject, &conjunct.object]
        .into_iter()
        .filter_map(Term::as_variable)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Omega {
        let mut g = GraphStore::new();
        g.add_triple("alice", "knows", "bob");
        g.add_triple("bob", "knows", "carol");
        g.add_triple("carol", "knows", "dave");
        g.add_triple("alice", "worksAt", "acme");
        g.add_triple("bob", "worksAt", "initech");
        g.add_triple("acme", "locatedIn", "UK");
        g.add_triple("initech", "locatedIn", "US");
        g.add_triple("alice", "type", "Student");
        g.add_triple("bob", "type", "Person");
        let mut o = Ontology::new();
        let student = g.node_by_label("Student").unwrap();
        let person = g.node_by_label("Person").unwrap();
        o.add_subclass(student, person).unwrap();
        Omega::new(g, o)
    }

    #[test]
    fn single_conjunct_execution() {
        let omega = engine();
        let answers = omega.execute("(?X) <- (alice, knows+, ?X)", None).unwrap();
        assert_eq!(answers.len(), 3);
        assert!(answers.iter().all(|a| a.distance == 0));
        let bound: Vec<&str> = answers.iter().map(|a| a.get("X").unwrap()).collect();
        assert!(bound.contains(&"bob") && bound.contains(&"dave"));
    }

    #[test]
    fn limit_truncates_results() {
        let omega = engine();
        let answers = omega
            .execute("(?X) <- (alice, knows+, ?X)", Some(2))
            .unwrap();
        assert_eq!(answers.len(), 2);
    }

    #[test]
    fn multi_conjunct_join() {
        let omega = engine();
        let answers = omega
            .execute(
                "(?X, ?C) <- (?X, knows, ?Y), (?Y, worksAt.locatedIn, ?C)",
                None,
            )
            .unwrap();
        // alice knows bob, bob works at initech in US.
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].get("X"), Some("alice"));
        assert_eq!(answers[0].get("C"), Some("US"));
        assert_eq!(answers[0].get("Y"), None, "Y is projected away");
    }

    #[test]
    fn projection_deduplicates() {
        let omega = engine();
        // Project only ?X: alice and bob both work somewhere located
        // somewhere, each contributing exactly one projected answer.
        let answers = omega
            .execute("(?X) <- (?X, worksAt.locatedIn, ?Y)", None)
            .unwrap();
        assert_eq!(answers.len(), 2);
    }

    #[test]
    fn approx_query_through_engine() {
        let omega = engine();
        let exact = omega
            .execute("(?X) <- (alice, worksAt.worksAt, ?X)", None)
            .unwrap();
        assert!(exact.is_empty());
        let approx = omega
            .execute("(?X) <- APPROX (alice, worksAt.worksAt, ?X)", None)
            .unwrap();
        assert!(!approx.is_empty());
        assert!(approx.iter().all(|a| a.distance >= 1));
    }

    #[test]
    fn relax_query_through_engine() {
        let omega = engine();
        let answers = omega
            .execute("(?X) <- RELAX (Student, type-, ?X)", None)
            .unwrap();
        assert_eq!(answers.len(), 2);
        let alice = answers
            .iter()
            .find(|a| a.get("X") == Some("alice"))
            .unwrap();
        assert_eq!(alice.distance, 0);
        let bob = answers.iter().find(|a| a.get("X") == Some("bob")).unwrap();
        assert_eq!(bob.distance, 1);
    }

    #[test]
    fn optimisations_do_not_change_answer_sets() {
        let base = engine();
        let mut distance_aware = engine();
        distance_aware.options_mut().distance_aware = true;
        let mut decomposed = engine();
        decomposed.options_mut().disjunction_decomposition = true;

        for query in [
            "(?X) <- APPROX (alice, knows.knows, ?X)",
            "(?X) <- APPROX (alice, (knows.knows)|(worksAt.locatedIn), ?X)",
            "(?X) <- RELAX (Student, type-, ?X)",
        ] {
            let reference: Vec<_> = base
                .execute(query, None)
                .unwrap()
                .into_iter()
                .map(|a| (a.bindings, a.distance))
                .collect();
            for variant in [&distance_aware, &decomposed] {
                let got: Vec<_> = variant
                    .execute(query, None)
                    .unwrap()
                    .into_iter()
                    .map(|a| (a.bindings, a.distance))
                    .collect();
                let sort = |mut v: Vec<(BTreeMap<String, String>, u32)>| {
                    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                    v
                };
                assert_eq!(
                    sort(reference.clone()),
                    sort(got),
                    "optimisation changed answers for {query}"
                );
            }
        }
    }

    #[test]
    fn stream_reports_statistics() {
        let omega = engine();
        let query = parse_query("(?X) <- (alice, knows+, ?X)").unwrap();
        let mut stream = omega.stream(&query).unwrap();
        let _ = stream.collect(None).unwrap();
        assert!(stream.stats().tuples_processed > 0);
    }

    #[test]
    fn parse_errors_surface() {
        let omega = engine();
        assert!(omega.execute("not a query", None).is_err());
        assert!(omega.execute("(?X) <- (ghost, knows, ?X)", None).is_err());
    }

    #[test]
    fn conjunct_variables_helper() {
        let q = parse_query("(?X) <- (alice, knows, ?X)").unwrap();
        assert_eq!(conjunct_variables(&q.conjuncts[0]), vec!["X"]);
    }
}
