//! The legacy `Omega` facade, now a thin shim over the service API
//! ([`crate::service::Database`] / [`crate::service::PreparedQuery`]).
//!
//! `Omega` predates the sessioned service surface: it owns its options
//! mutably (`options_mut`) and recompiles every query per call, so it cannot
//! be shared across threads or amortise compilation. New code should hold a
//! [`Database`] and prepare queries instead; `Omega` remains for source
//! compatibility and delegates all storage and evaluation to the same
//! machinery.

#![allow(deprecated)]

use omega_graph::GraphStore;
use omega_ontology::Ontology;

use crate::answer::Answer;
use crate::error::Result;
use crate::eval::{EvalOptions, EvalStats};
use crate::query::ast::Query;
use crate::query::parser::parse_query;
use crate::service::{compile_prepared, Answers, Database, GraphData};

pub use crate::service::conjunct_variables;

/// The original single-owner query engine: a data graph, its ontology, and
/// engine-global evaluation options.
///
/// ```
/// use omega_core::Omega;
/// use omega_graph::GraphStore;
/// use omega_ontology::Ontology;
///
/// let mut graph = GraphStore::new();
/// graph.add_triple("alice", "knows", "bob");
/// graph.add_triple("bob", "knows", "carol");
/// let omega = Omega::new(graph, Ontology::new());
///
/// let answers = omega.execute("(?X) <- (alice, knows+, ?X)", None).unwrap();
/// assert_eq!(answers.len(), 2);
/// assert_eq!(answers[0].distance, 0);
/// ```
#[deprecated(
    since = "0.3.0",
    note = "use `Database` (shared, Send + Sync) with `PreparedQuery`/`ExecOptions` instead"
)]
pub struct Omega {
    db: Database,
    /// The storage epoch pinned at construction. `Omega` predates live
    /// mutation and hands out plain `&GraphStore` borrows, so it serves the
    /// epoch it was built on for its whole lifetime.
    data: std::sync::Arc<GraphData>,
    options: EvalOptions,
}

impl Omega {
    /// Creates an engine with default [`EvalOptions`].
    pub fn new(graph: GraphStore, ontology: Ontology) -> Omega {
        Omega::with_options(graph, ontology, EvalOptions::default())
    }

    /// Creates an engine with explicit options.
    ///
    /// The graph is frozen into its CSR representation here, exactly as
    /// [`Database::with_options`] does.
    pub fn with_options(graph: GraphStore, ontology: Ontology, options: EvalOptions) -> Omega {
        let db = Database::with_options(graph, ontology, options.clone());
        let data = db.data();
        Omega { db, data, options }
    }

    /// The data graph.
    pub fn graph(&self) -> &GraphStore {
        &self.data.graph
    }

    /// The ontology.
    pub fn ontology(&self) -> &Ontology {
        self.db.ontology()
    }

    /// The evaluation options.
    pub fn options(&self) -> &EvalOptions {
        &self.options
    }

    /// Mutable access to the evaluation options (e.g. to toggle the
    /// Section 4.3 optimisations between runs).
    ///
    /// This engine-global mutability is why `Omega` cannot be shared across
    /// threads; the service API replaces it with per-request
    /// [`crate::service::ExecOptions`].
    pub fn options_mut(&mut self) -> &mut EvalOptions {
        &mut self.options
    }

    /// Parses and executes a query, returning at most `limit` answers in
    /// non-decreasing distance order (all answers when `limit` is `None`).
    pub fn execute(&self, query_text: &str, limit: Option<usize>) -> Result<Vec<Answer>> {
        let query = parse_query(query_text)?;
        self.execute_query(&query, limit)
    }

    /// Executes an already parsed query.
    pub fn execute_query(&self, query: &Query, limit: Option<usize>) -> Result<Vec<Answer>> {
        let mut stream = self.stream(query)?;
        stream.collect(limit)
    }

    /// Prepares an incremental answer stream for `query`.
    ///
    /// Unlike [`Database::prepare`], the query is recompiled on every call
    /// against the engine's *current* options — the original semantics of
    /// this type, preserved for callers that mutate `options_mut` between
    /// runs.
    pub fn stream(&self, query: &Query) -> Result<QueryStream<'_>> {
        let prepared =
            compile_prepared(query, &self.data.graph, &self.data.ontology, &self.options)?;
        Ok(QueryStream {
            inner: prepared.answers(
                &self.data,
                self.db.pool(),
                self.db.governor(),
                self.db.core_metrics(),
                self.options.clone(),
                None,
                false,
            ),
        })
    }
}

/// An incremental stream of [`Answer`]s for one query — the pre-service
/// streaming interface, now a wrapper over [`Answers`].
pub struct QueryStream<'a> {
    inner: Answers<'a>,
}

impl QueryStream<'_> {
    /// The next answer, or `Ok(None)` when the stream is exhausted.
    ///
    /// Not an `Iterator` because production is fallible (`Result`); use
    /// [`Answers`] for the iterator interface.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Answer>> {
        self.inner.next_answer()
    }

    /// Collects up to `limit` answers (all of them when `None`).
    pub fn collect(&mut self, limit: Option<usize>) -> Result<Vec<Answer>> {
        self.inner.collect_up_to(limit)
    }

    /// Evaluation statistics accumulated so far across all conjuncts.
    pub fn stats(&self) -> EvalStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn engine() -> Omega {
        let mut g = GraphStore::new();
        g.add_triple("alice", "knows", "bob");
        g.add_triple("bob", "knows", "carol");
        g.add_triple("carol", "knows", "dave");
        g.add_triple("alice", "worksAt", "acme");
        g.add_triple("bob", "worksAt", "initech");
        g.add_triple("acme", "locatedIn", "UK");
        g.add_triple("initech", "locatedIn", "US");
        g.add_triple("alice", "type", "Student");
        g.add_triple("bob", "type", "Person");
        let mut o = Ontology::new();
        let student = g.node_by_label("Student").unwrap();
        let person = g.node_by_label("Person").unwrap();
        o.add_subclass(student, person).unwrap();
        Omega::new(g, o)
    }

    #[test]
    fn single_conjunct_execution() {
        let omega = engine();
        let answers = omega.execute("(?X) <- (alice, knows+, ?X)", None).unwrap();
        assert_eq!(answers.len(), 3);
        assert!(answers.iter().all(|a| a.distance == 0));
        let bound: Vec<&str> = answers.iter().map(|a| a.get("X").unwrap()).collect();
        assert!(bound.contains(&"bob") && bound.contains(&"dave"));
    }

    #[test]
    fn limit_truncates_results() {
        let omega = engine();
        let answers = omega
            .execute("(?X) <- (alice, knows+, ?X)", Some(2))
            .unwrap();
        assert_eq!(answers.len(), 2);
    }

    #[test]
    fn multi_conjunct_join() {
        let omega = engine();
        let answers = omega
            .execute(
                "(?X, ?C) <- (?X, knows, ?Y), (?Y, worksAt.locatedIn, ?C)",
                None,
            )
            .unwrap();
        // alice knows bob, bob works at initech in US.
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].get("X"), Some("alice"));
        assert_eq!(answers[0].get("C"), Some("US"));
        assert_eq!(answers[0].get("Y"), None, "Y is projected away");
    }

    #[test]
    fn projection_deduplicates() {
        let omega = engine();
        // Project only ?X: alice and bob both work somewhere located
        // somewhere, each contributing exactly one projected answer.
        let answers = omega
            .execute("(?X) <- (?X, worksAt.locatedIn, ?Y)", None)
            .unwrap();
        assert_eq!(answers.len(), 2);
    }

    #[test]
    fn approx_query_through_engine() {
        let omega = engine();
        let exact = omega
            .execute("(?X) <- (alice, worksAt.worksAt, ?X)", None)
            .unwrap();
        assert!(exact.is_empty());
        let approx = omega
            .execute("(?X) <- APPROX (alice, worksAt.worksAt, ?X)", None)
            .unwrap();
        assert!(!approx.is_empty());
        assert!(approx.iter().all(|a| a.distance >= 1));
    }

    #[test]
    fn relax_query_through_engine() {
        let omega = engine();
        let answers = omega
            .execute("(?X) <- RELAX (Student, type-, ?X)", None)
            .unwrap();
        assert_eq!(answers.len(), 2);
        let alice = answers
            .iter()
            .find(|a| a.get("X") == Some("alice"))
            .unwrap();
        assert_eq!(alice.distance, 0);
        let bob = answers.iter().find(|a| a.get("X") == Some("bob")).unwrap();
        assert_eq!(bob.distance, 1);
    }

    #[test]
    fn optimisations_do_not_change_answer_sets() {
        let base = engine();
        let mut distance_aware = engine();
        distance_aware.options_mut().distance_aware = true;
        let mut decomposed = engine();
        decomposed.options_mut().disjunction_decomposition = true;

        for query in [
            "(?X) <- APPROX (alice, knows.knows, ?X)",
            "(?X) <- APPROX (alice, (knows.knows)|(worksAt.locatedIn), ?X)",
            "(?X) <- RELAX (Student, type-, ?X)",
        ] {
            let reference: Vec<_> = base
                .execute(query, None)
                .unwrap()
                .into_iter()
                .map(|a| (a.bindings, a.distance))
                .collect();
            for variant in [&distance_aware, &decomposed] {
                let got: Vec<_> = variant
                    .execute(query, None)
                    .unwrap()
                    .into_iter()
                    .map(|a| (a.bindings, a.distance))
                    .collect();
                let sort = |mut v: Vec<(BTreeMap<String, String>, u32)>| {
                    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                    v
                };
                assert_eq!(
                    sort(reference.clone()),
                    sort(got),
                    "optimisation changed answers for {query}"
                );
            }
        }
    }

    #[test]
    fn options_mut_takes_effect_without_rebuilding() {
        let mut omega = engine();
        omega.options_mut().max_tuples = Some(3);
        let result = omega.execute("(?X, ?Y) <- APPROX (?X, knows+, ?Y)", None);
        assert!(matches!(
            result,
            Err(crate::error::OmegaError::ResourceExhausted { .. })
        ));
    }

    #[test]
    fn stream_reports_statistics() {
        let omega = engine();
        let query = parse_query("(?X) <- (alice, knows+, ?X)").unwrap();
        let mut stream = omega.stream(&query).unwrap();
        let _ = stream.collect(None).unwrap();
        assert!(stream.stats().tuples_processed > 0);
    }

    #[test]
    fn parse_errors_surface() {
        let omega = engine();
        assert!(omega.execute("not a query", None).is_err());
        assert!(omega.execute("(?X) <- (ghost, knows, ?X)", None).is_err());
    }

    #[test]
    fn conjunct_variables_helper() {
        let q = parse_query("(?X) <- (alice, knows, ?X)").unwrap();
        assert_eq!(conjunct_variables(&q.conjuncts[0]), vec!["X"]);
    }
}
