//! Parser for the textual query syntax used throughout the paper:
//!
//! ```text
//! (?X) <- (UK, isLocatedIn-.gradFrom, ?X)
//! (?X) <- APPROX (UK, isLocatedIn-.gradFrom, ?X)
//! (?X, ?Y) <- (?X, job.type, ?Y), RELAX (?Y, subjectArea, ?X)
//! ```
//!
//! * the head lists the projected variables,
//! * each conjunct is `(subject, regex, object)`, optionally prefixed by
//!   `APPROX` or `RELAX`,
//! * variables start with `?`; anything else is a constant node label
//!   (constants may contain spaces, e.g. `Work Episode`).

use omega_regex::parse as parse_regex;

use crate::error::{OmegaError, Result};
use crate::query::ast::{Conjunct, Query, QueryMode, Term};

/// Parses a query from its textual form and validates it.
pub fn parse_query(input: &str) -> Result<Query> {
    let arrow = input.find("<-").ok_or_else(|| OmegaError::Parse {
        position: 0,
        message: "expected '<-' between head and body".into(),
    })?;
    let head_text = &input[..arrow];
    let body_text = &input[arrow + 2..];

    let head = parse_head(head_text)?;
    let conjuncts = parse_body(body_text, arrow + 2)?;
    let query = Query { head, conjuncts };
    query.validate()?;
    Ok(query)
}

fn parse_head(text: &str) -> Result<Vec<String>> {
    let trimmed = text.trim();
    let inner = trimmed
        .strip_prefix('(')
        .and_then(|t| t.strip_suffix(')'))
        .ok_or_else(|| OmegaError::Parse {
            position: 0,
            message: "query head must be a parenthesised variable list".into(),
        })?;
    let mut head = Vec::new();
    for part in inner.split(',') {
        let var = part.trim();
        if var.is_empty() {
            continue;
        }
        if !var.starts_with('?') {
            return Err(OmegaError::Parse {
                position: 0,
                message: format!("head entries must be variables, got {var:?}"),
            });
        }
        head.push(var.trim_start_matches('?').to_owned());
    }
    if head.is_empty() {
        return Err(OmegaError::Parse {
            position: 0,
            message: "query head must contain at least one variable".into(),
        });
    }
    Ok(head)
}

fn parse_body(text: &str, base_offset: usize) -> Result<Vec<Conjunct>> {
    let mut conjuncts = Vec::new();
    let mut rest = text;
    let mut offset = base_offset;
    loop {
        // Skip leading whitespace and conjunct separators.
        let skipped = rest.len() - rest.trim_start_matches([' ', '\t', '\n', '\r', ',']).len();
        rest = &rest[skipped..];
        offset += skipped;
        if rest.is_empty() {
            break;
        }
        let (conjunct, consumed) = parse_conjunct(rest, offset)?;
        conjuncts.push(conjunct);
        rest = &rest[consumed..];
        offset += consumed;
    }
    if conjuncts.is_empty() {
        return Err(OmegaError::EmptyQuery);
    }
    Ok(conjuncts)
}

/// Parses one conjunct at the start of `text`; returns it and the number of
/// bytes consumed.
fn parse_conjunct(text: &str, offset: usize) -> Result<(Conjunct, usize)> {
    let mut mode = QueryMode::Exact;
    let mut consumed = 0;
    let trimmed = text.trim_start();
    consumed += text.len() - trimmed.len();
    let mut rest = trimmed;
    for (keyword, parsed_mode) in [("APPROX", QueryMode::Approx), ("RELAX", QueryMode::Relax)] {
        if let Some(after) = rest.strip_prefix(keyword) {
            mode = parsed_mode;
            consumed += keyword.len();
            let ws = after.len() - after.trim_start().len();
            consumed += ws;
            rest = after.trim_start();
            break;
        }
    }
    if !rest.starts_with('(') {
        return Err(OmegaError::Parse {
            position: offset + consumed,
            message: format!("expected '(' to start a conjunct, found {rest:.20?}"),
        });
    }
    let close = rest.find(')').ok_or_else(|| OmegaError::Parse {
        position: offset + consumed,
        message: "unterminated conjunct: missing ')'".into(),
    })?;
    // Regular expressions never contain parentheses that are unbalanced, but
    // they *can* contain parentheses (e.g. `next+|(prereq+.next)`), so find
    // the matching close parenthesis by depth rather than the first ')'.
    let close = matching_paren(rest).ok_or_else(|| OmegaError::Parse {
        position: offset + consumed + close,
        message: "unbalanced parentheses in conjunct".into(),
    })?;
    let inner = &rest[1..close];
    let parts = split_top_level(inner);
    if parts.len() != 3 {
        return Err(OmegaError::Parse {
            position: offset + consumed,
            message: format!(
                "a conjunct needs exactly 3 comma-separated parts (subject, regex, object), got {}",
                parts.len()
            ),
        });
    }
    let subject = parse_term(parts[0]);
    let regex = parse_regex(parts[1].trim())?;
    let object = parse_term(parts[2]);
    consumed += close + 1;
    Ok((
        Conjunct {
            mode,
            subject,
            regex,
            object,
        },
        consumed,
    ))
}

/// Index of the ')' matching the '(' at position 0.
fn matching_paren(text: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (i, c) in text.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Splits on commas that are not nested inside parentheses.
fn split_top_level(text: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (i, c) in text.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth -= 1,
            ',' if depth == 0 => {
                parts.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&text[start..]);
    parts
}

fn parse_term(text: &str) -> Term {
    let trimmed = text.trim();
    if let Some(var) = trimmed.strip_prefix('?') {
        Term::Variable(var.to_owned())
    } else {
        Term::Constant(trimmed.to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_query() {
        let q = parse_query("(?X) <- (UK, isLocatedIn-.gradFrom, ?X)").unwrap();
        assert_eq!(q.head, vec!["X"]);
        assert_eq!(q.conjuncts.len(), 1);
        let c = &q.conjuncts[0];
        assert_eq!(c.mode, QueryMode::Exact);
        assert_eq!(c.subject, Term::constant("UK"));
        assert_eq!(c.object, Term::variable("X"));
        assert_eq!(c.regex.to_string(), "isLocatedIn-.gradFrom");
    }

    #[test]
    fn parses_approx_and_relax() {
        let q = parse_query("(?X) <- APPROX (UK, isLocatedIn-.gradFrom, ?X)").unwrap();
        assert_eq!(q.conjuncts[0].mode, QueryMode::Approx);
        let q = parse_query("(?X) <- RELAX (UK, isLocatedIn-.gradFrom, ?X)").unwrap();
        assert_eq!(q.conjuncts[0].mode, QueryMode::Relax);
    }

    #[test]
    fn parses_constants_with_spaces() {
        let q = parse_query("(?X) <- (Work Episode, type-, ?X)").unwrap();
        assert_eq!(q.conjuncts[0].subject, Term::constant("Work Episode"));
        let q =
            parse_query("(?X) <- (BTEC Introductory Diploma, level-.qualif-.prereq, ?X)").unwrap();
        assert_eq!(
            q.conjuncts[0].subject,
            Term::constant("BTEC Introductory Diploma")
        );
    }

    #[test]
    fn parses_regex_with_parentheses() {
        let q =
            parse_query("(?X) <- (UK, (livesIn-.hasCurrency)|(locatedIn-.gradFrom), ?X)").unwrap();
        assert_eq!(q.conjuncts[0].regex.top_level_branches().len(), 2);
        let q = parse_query("(?X, ?Y) <- (?X, next+|(prereq+.next), ?Y)").unwrap();
        assert_eq!(q.conjuncts[0].regex.top_level_branches().len(), 2);
    }

    #[test]
    fn parses_multi_conjunct_queries() {
        let q = parse_query(
            "(?X, ?Z) <- (?X, job.type, ?Y), APPROX (?Y, prereq+, ?Z), RELAX (?Z, next, ?X)",
        )
        .unwrap();
        assert_eq!(q.conjuncts.len(), 3);
        assert_eq!(q.conjuncts[0].mode, QueryMode::Exact);
        assert_eq!(q.conjuncts[1].mode, QueryMode::Approx);
        assert_eq!(q.conjuncts[2].mode, QueryMode::Relax);
        assert_eq!(q.head, vec!["X", "Z"]);
    }

    #[test]
    fn parses_variable_only_conjuncts() {
        let q = parse_query("(?X, ?Y) <- (?X, next+, ?Y)").unwrap();
        assert!(q.conjuncts[0].subject.is_variable());
        assert!(q.conjuncts[0].object.is_variable());
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse_query("no arrow here").is_err());
        assert!(parse_query("(?X) <- ").is_err());
        assert!(parse_query("(?X) <- (UK, a.b)").is_err()); // only two parts
        assert!(parse_query("(?X) <- (UK, a.b, ?X, extra)").is_err());
        assert!(parse_query("(X) <- (UK, a, ?X)").is_err()); // head not a variable
        assert!(parse_query("(?Z) <- (UK, a, ?X)").is_err()); // unbound head var
        assert!(parse_query("(?X) <- (UK, a.(b, ?X)").is_err()); // unbalanced parens
        assert!(parse_query("() <- (UK, a, ?X)").is_err()); // empty head
    }

    #[test]
    fn whitespace_variants_are_accepted() {
        let q1 = parse_query("(?X)<-(UK,a.b,?X)").unwrap();
        let q2 = parse_query("( ?X )  <-   ( UK , a.b , ?X )").unwrap();
        assert_eq!(q1, q2);
    }

    #[test]
    fn all_paper_l4all_queries_parse() {
        let queries = [
            "(?X) <- (Work Episode, type-, ?X)",
            "(?X) <- (Information Systems, type-.qualif-, ?X)",
            "(?X) <- (Software Professionals, type-.job-, ?X)",
            "(?X, ?Y) <- (?X, job.type, ?Y)",
            "(?X, ?Y) <- (?X, next+, ?Y)",
            "(?X, ?Y) <- (?X, prereq+, ?Y)",
            "(?X, ?Y) <- (?X, next+|(prereq+.next), ?Y)",
            "(?X) <- (Mathematical and Computer Sciences, type.prereq+, ?X)",
            "(?X) <- (Alumni 4 Episode 1_1, prereq*.next+.prereq, ?X)",
            "(?X) <- (Librarians, type-, ?X)",
            "(?X) <- (Librarians, type-.job-.next, ?X)",
            "(?X) <- (BTEC Introductory Diploma, level-.qualif-.prereq, ?X)",
        ];
        for text in queries {
            for mode in ["", "APPROX ", "RELAX "] {
                let with_mode = text.replace("<- (", &format!("<- {mode}("));
                assert!(parse_query(&with_mode).is_ok(), "failed: {with_mode}");
            }
        }
    }

    #[test]
    fn all_paper_yago_queries_parse() {
        let queries = [
            "(?X) <- (Halle_Saxony-Anhalt, bornIn-.marriedTo.hasChild, ?X)",
            "(?X) <- (Li_Peng, hasChild.gradFrom.gradFrom-.hasWonPrize, ?X)",
            "(?X) <- (wordnet_ziggurat, type-.locatedIn-, ?X)",
            "(?X, ?Y) <- (?X, directed.married.married+.playsFor, ?Y)",
            "(?X, ?Y) <- (?X, isConnectedTo.wasBornIn, ?Y)",
            "(?X, ?Y) <- (?X, imports.exports-, ?Y)",
            "(?X) <- (wordnet_city, type-.happenedIn-.participatedIn-, ?X)",
            "(?X) <- (Annie Haslam, type.type-.actedIn, ?X)",
            "(?X) <- (UK, (livesIn-.hasCurrency)|(locatedIn-.gradFrom), ?X)",
        ];
        for text in queries {
            assert!(parse_query(text).is_ok(), "failed: {text}");
        }
    }
}
