//! The CRPQ query model and its parser.

pub mod ast;
pub mod parser;

pub use ast::{Conjunct, Query, QueryMode, Term};
pub use parser::parse_query;
