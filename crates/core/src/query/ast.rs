//! Abstract syntax of conjunctive regular path queries with APPROX/RELAX.

use std::collections::BTreeSet;
use std::fmt;

use omega_regex::RpqRegex;

use crate::error::{OmegaError, Result};

/// A subject/object term of a conjunct: a variable (`?X`) or a constant node
/// label (`UK`, `Work Episode`, …).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A variable, stored without the leading `?`.
    Variable(String),
    /// A constant node label.
    Constant(String),
}

impl Term {
    /// Builds a variable term (the leading `?` is stripped if present).
    pub fn variable(name: &str) -> Term {
        Term::Variable(name.trim_start_matches('?').to_owned())
    }

    /// Builds a constant term.
    pub fn constant(name: impl Into<String>) -> Term {
        Term::Constant(name.into())
    }

    /// Whether this term is a variable.
    pub fn is_variable(&self) -> bool {
        matches!(self, Term::Variable(_))
    }

    /// The variable name, if this term is a variable.
    pub fn as_variable(&self) -> Option<&str> {
        match self {
            Term::Variable(v) => Some(v),
            Term::Constant(_) => None,
        }
    }

    /// The constant label, if this term is a constant.
    pub fn as_constant(&self) -> Option<&str> {
        match self {
            Term::Constant(c) => Some(c),
            Term::Variable(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Variable(v) => write!(f, "?{v}"),
            Term::Constant(c) => write!(f, "{c}"),
        }
    }
}

/// Evaluation mode of a conjunct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueryMode {
    /// Exact matching of the regular expression.
    #[default]
    Exact,
    /// Approximate matching under edit distance (the APPROX operator).
    Approx,
    /// Ontology-driven relaxation (the RELAX operator).
    Relax,
}

impl fmt::Display for QueryMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryMode::Exact => write!(f, "EXACT"),
            QueryMode::Approx => write!(f, "APPROX"),
            QueryMode::Relax => write!(f, "RELAX"),
        }
    }
}

/// One conjunct `(X, R, Y)`, optionally prefixed by APPROX or RELAX.
#[derive(Debug, Clone, PartialEq)]
pub struct Conjunct {
    /// Evaluation mode.
    pub mode: QueryMode,
    /// Subject term `X`.
    pub subject: Term,
    /// The regular path expression `R`.
    pub regex: RpqRegex,
    /// Object term `Y`.
    pub object: Term,
}

impl Conjunct {
    /// Variables appearing in this conjunct.
    pub fn variables(&self) -> BTreeSet<&str> {
        [&self.subject, &self.object]
            .into_iter()
            .filter_map(Term::as_variable)
            .collect()
    }
}

impl fmt::Display for Conjunct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mode {
            QueryMode::Exact => write!(f, "({}, {}, {})", self.subject, self.regex, self.object),
            mode => write!(
                f,
                "{mode} ({}, {}, {})",
                self.subject, self.regex, self.object
            ),
        }
    }
}

/// A conjunctive regular path query
/// `(Z1, …, Zm) <- (X1, R1, Y1), …, (Xn, Rn, Yn)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Head (projected) variables, without the leading `?`.
    pub head: Vec<String>,
    /// Body conjuncts.
    pub conjuncts: Vec<Conjunct>,
}

impl Query {
    /// A single-conjunct query projecting all of the conjunct's variables.
    pub fn single(conjunct: Conjunct) -> Query {
        let head = conjunct
            .variables()
            .into_iter()
            .map(str::to_owned)
            .collect();
        Query {
            head,
            conjuncts: vec![conjunct],
        }
    }

    /// All variables appearing in the body.
    pub fn body_variables(&self) -> BTreeSet<&str> {
        self.conjuncts
            .iter()
            .flat_map(Conjunct::variables)
            .collect()
    }

    /// Validates the query: non-empty body and every head variable bound in
    /// the body.
    pub fn validate(&self) -> Result<()> {
        if self.conjuncts.is_empty() {
            return Err(OmegaError::EmptyQuery);
        }
        let body_vars = self.body_variables();
        for head_var in &self.head {
            if !body_vars.contains(head_var.as_str()) {
                return Err(OmegaError::UnboundHeadVariable(head_var.clone()));
            }
        }
        Ok(())
    }

    /// Returns a copy of the query with every conjunct's mode replaced — the
    /// experiment harness uses this to run the same query in exact, APPROX
    /// and RELAX modes.
    pub fn with_mode(&self, mode: QueryMode) -> Query {
        Query {
            head: self.head.clone(),
            conjuncts: self
                .conjuncts
                .iter()
                .map(|c| Conjunct { mode, ..c.clone() })
                .collect(),
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let head: Vec<String> = self.head.iter().map(|v| format!("?{v}")).collect();
        let body: Vec<String> = self.conjuncts.iter().map(|c| c.to_string()).collect();
        write!(f, "({}) <- {}", head.join(", "), body.join(", "))
    }
}

/// Queries parse from their textual form, so `text.parse::<Query>()` works
/// wherever [`crate::parse_query`] does:
///
/// ```
/// use omega_core::Query;
///
/// let query: Query = "(?X) <- APPROX (UK, locatedIn-, ?X)".parse().unwrap();
/// assert_eq!(query.head, vec!["X"]);
/// ```
impl std::str::FromStr for Query {
    type Err = OmegaError;

    fn from_str(text: &str) -> Result<Query> {
        crate::query::parser::parse_query(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_regex::parse as parse_regex;

    fn conjunct(mode: QueryMode, subject: Term, regex: &str, object: Term) -> Conjunct {
        Conjunct {
            mode,
            subject,
            regex: parse_regex(regex).unwrap(),
            object,
        }
    }

    #[test]
    fn term_constructors() {
        assert_eq!(Term::variable("?X"), Term::Variable("X".into()));
        assert_eq!(Term::variable("X"), Term::Variable("X".into()));
        assert!(Term::variable("?X").is_variable());
        assert_eq!(Term::constant("UK").as_constant(), Some("UK"));
        assert_eq!(Term::variable("?X").as_constant(), None);
    }

    #[test]
    fn query_validation() {
        let c = conjunct(
            QueryMode::Exact,
            Term::constant("UK"),
            "locatedIn-",
            Term::variable("X"),
        );
        let q = Query {
            head: vec!["X".into()],
            conjuncts: vec![c.clone()],
        };
        assert!(q.validate().is_ok());

        let bad_head = Query {
            head: vec!["Z".into()],
            conjuncts: vec![c],
        };
        assert!(matches!(
            bad_head.validate(),
            Err(OmegaError::UnboundHeadVariable(_))
        ));

        let empty = Query {
            head: vec![],
            conjuncts: vec![],
        };
        assert_eq!(empty.validate(), Err(OmegaError::EmptyQuery));
    }

    #[test]
    fn single_projects_all_variables() {
        let q = Query::single(conjunct(
            QueryMode::Approx,
            Term::variable("X"),
            "next+",
            Term::variable("Y"),
        ));
        assert_eq!(q.head, vec!["X".to_owned(), "Y".to_owned()]);
        assert!(q.validate().is_ok());
    }

    #[test]
    fn with_mode_rewrites_all_conjuncts() {
        let q = Query::single(conjunct(
            QueryMode::Exact,
            Term::constant("UK"),
            "locatedIn-",
            Term::variable("X"),
        ));
        let relaxed = q.with_mode(QueryMode::Relax);
        assert!(relaxed.conjuncts.iter().all(|c| c.mode == QueryMode::Relax));
        assert_eq!(relaxed.head, q.head);
    }

    #[test]
    fn display_round_trips_visually() {
        let q = Query {
            head: vec!["X".into()],
            conjuncts: vec![conjunct(
                QueryMode::Approx,
                Term::constant("UK"),
                "isLocatedIn-.gradFrom",
                Term::variable("X"),
            )],
        };
        assert_eq!(
            q.to_string(),
            "(?X) <- APPROX (UK, isLocatedIn-.gradFrom, ?X)"
        );
    }
}
