//! The ranked, incremental evaluator — the paper's `Open` / `GetNext` /
//! `Succ` procedures, the optimisations of Section 4.3, the multi-conjunct
//! ranked join and the exact baseline evaluator.

pub mod baseline;
pub mod cancel;
pub mod conjunct;
pub mod disjunction;
pub mod distance_aware;
pub mod dr;
pub mod fault;
pub mod initial;
pub mod options;
pub mod parallel;
pub mod plan;
pub mod rank_join;
pub mod stats;
pub mod succ;
pub mod tuple;
pub mod visited;

pub use baseline::BaselineEvaluator;
pub use cancel::CancelToken;
pub use conjunct::{evaluate_conjunct, ConjunctEvaluator};
pub use disjunction::{compile_branches, DisjunctionEvaluator};
pub use distance_aware::DistanceAwareEvaluator;
pub use options::{EvalOptions, OverloadPolicy};
pub use parallel::{live_parallel_workers, ParallelStream, WorkerPool};
pub use plan::{compile_conjunct, ConjunctPlan, SeedSpec};
pub use rank_join::RankJoin;
pub use stats::{EvalStats, TruncationReason};

use crate::answer::ConjunctAnswer;
use crate::error::Result;

/// A stream of conjunct answers in non-decreasing distance order.
///
/// Implemented by the plain evaluator ([`ConjunctEvaluator`]) and by the two
/// optimised drivers ([`DistanceAwareEvaluator`], [`DisjunctionEvaluator`]);
/// the ranked join consumes any mixture of them.
pub trait AnswerStream {
    /// Produces the next answer, or `Ok(None)` when the stream is exhausted.
    fn next_answer(&mut self) -> Result<Option<ConjunctAnswer>>;

    /// Evaluation statistics accumulated so far.
    fn stats(&self) -> EvalStats;
}
