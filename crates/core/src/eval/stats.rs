//! Evaluation statistics, used by tests and by the ablation benchmarks.

use std::ops::AddAssign;

/// Counters accumulated during evaluation of a conjunct or query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Tuples added to the distance dictionary `D_R`.
    pub tuples_added: u64,
    /// Tuples removed from `D_R` and processed by `GetNext`.
    pub tuples_processed: u64,
    /// Calls to the `Succ` function.
    pub succ_calls: u64,
    /// Neighbour-list lookups against the graph store.
    pub neighbour_lookups: u64,
    /// Answers emitted.
    pub answers: u64,
    /// Tuples suppressed because their distance exceeded the current ψ bound
    /// (distance-aware evaluation only).
    pub suppressed: u64,
    /// Number of evaluation restarts performed by the escalating drivers.
    pub restarts: u64,
}

impl AddAssign for EvalStats {
    fn add_assign(&mut self, rhs: EvalStats) {
        self.tuples_added += rhs.tuples_added;
        self.tuples_processed += rhs.tuples_processed;
        self.succ_calls += rhs.succ_calls;
        self.neighbour_lookups += rhs.neighbour_lookups;
        self.answers += rhs.answers;
        self.suppressed += rhs.suppressed;
        self.restarts += rhs.restarts;
    }
}

impl std::fmt::Display for EvalStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "added={} processed={} succ={} lookups={} answers={} suppressed={} restarts={}",
            self.tuples_added,
            self.tuples_processed,
            self.succ_calls,
            self.neighbour_lookups,
            self.answers,
            self.suppressed,
            self.restarts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_accumulates() {
        let mut a = EvalStats {
            tuples_added: 1,
            tuples_processed: 2,
            succ_calls: 3,
            neighbour_lookups: 4,
            answers: 5,
            suppressed: 6,
            restarts: 7,
        };
        a += a;
        assert_eq!(a.tuples_added, 2);
        assert_eq!(a.restarts, 14);
        assert!(a.to_string().contains("answers=10"));
    }
}
