//! Evaluation statistics, used by tests and by the ablation benchmarks.

use std::ops::AddAssign;

/// Why a degraded stream stopped early. Recorded in
/// [`EvalStats::truncation`] when graceful degradation cuts an evaluation
/// short, so consumers can tell a complete answer set from a truncated one
/// — and why it was truncated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TruncationReason {
    /// The per-query live-tuple budget (`max_tuples`) tripped.
    TupleBudget,
    /// The shared governor tuple pool could not satisfy a reservation
    /// within its bounded backoff.
    PoolExhausted,
}

impl TruncationReason {
    /// Stable lower-case name, used by the benchmark report.
    pub fn name(self) -> &'static str {
        match self {
            TruncationReason::TupleBudget => "tuple_budget",
            TruncationReason::PoolExhausted => "pool_exhausted",
        }
    }
}

/// Counters accumulated during evaluation of a conjunct or query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Tuples added to the distance dictionary `D_R`.
    pub tuples_added: u64,
    /// Tuples removed from `D_R` and processed by `GetNext`.
    pub tuples_processed: u64,
    /// Calls to the `Succ` function.
    pub succ_calls: u64,
    /// Neighbour-list lookups against the graph store.
    pub neighbour_lookups: u64,
    /// Answers emitted.
    pub answers: u64,
    /// Tuples suppressed because their distance exceeded the current ψ bound
    /// (distance-aware evaluation only).
    pub suppressed: u64,
    /// Number of evaluation restarts performed by the escalating drivers.
    pub restarts: u64,
    /// Tuples (or transitions) dropped because their automaton state can
    /// never reach acceptance against this graph (cost-guided evaluation).
    pub pruned_dead: u64,
    /// Tuples dropped because `g + h` — the accumulated distance plus the
    /// admissible per-state accept lower bound — provably exceeded the
    /// distance ceiling (cost-guided evaluation; also counted in
    /// `suppressed`, since a higher ceiling could admit them).
    pub pruned_bound: u64,
    /// Deferred positive-cost expansions performed: tuples whose wildcard /
    /// edit / relaxation successors were materialised only once the distance
    /// cursor reached them (cost-guided evaluation).
    pub deferred_expansions: u64,
    /// Conjunct worker threads that panicked during this execution. Always
    /// zero on a healthy engine; the panic also surfaces as
    /// [`crate::OmegaError::Internal`] on the consuming stream.
    pub worker_panics: u64,
    /// Shed retries performed: executions that were re-admitted with shrunk
    /// budgets after an initial overload rejection
    /// (`OverloadPolicy::Shed`).
    pub sheds: u64,
    /// Whether the answer stream was truncated by graceful degradation:
    /// a resource budget tripped mid-query and, under
    /// `OverloadPolicy::Degrade`, the stream finished cleanly with the
    /// answers proven complete instead of failing. The answers yielded are
    /// exactly the uncapped run's prefix (per conjunct); ranks at or beyond
    /// the recorded frontier may be missing.
    pub degraded: bool,
    /// Why the stream was truncated, when `degraded` is set.
    pub truncation: Option<TruncationReason>,
}

impl AddAssign for EvalStats {
    fn add_assign(&mut self, rhs: EvalStats) {
        self.tuples_added += rhs.tuples_added;
        self.tuples_processed += rhs.tuples_processed;
        self.succ_calls += rhs.succ_calls;
        self.neighbour_lookups += rhs.neighbour_lookups;
        self.answers += rhs.answers;
        self.suppressed += rhs.suppressed;
        self.restarts += rhs.restarts;
        self.pruned_dead += rhs.pruned_dead;
        self.pruned_bound += rhs.pruned_bound;
        self.deferred_expansions += rhs.deferred_expansions;
        self.worker_panics += rhs.worker_panics;
        self.sheds += rhs.sheds;
        self.degraded |= rhs.degraded;
        self.truncation = self.truncation.or(rhs.truncation);
    }
}

impl std::fmt::Display for EvalStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "added={} processed={} succ={} lookups={} answers={} suppressed={} restarts={} \
             pruned_dead={} pruned_bound={} deferred={} worker_panics={} sheds={} degraded={}",
            self.tuples_added,
            self.tuples_processed,
            self.succ_calls,
            self.neighbour_lookups,
            self.answers,
            self.suppressed,
            self.restarts,
            self.pruned_dead,
            self.pruned_bound,
            self.deferred_expansions,
            self.worker_panics,
            self.sheds,
            self.degraded
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_accumulates() {
        let mut a = EvalStats {
            tuples_added: 1,
            tuples_processed: 2,
            succ_calls: 3,
            neighbour_lookups: 4,
            answers: 5,
            suppressed: 6,
            restarts: 7,
            pruned_dead: 8,
            pruned_bound: 9,
            deferred_expansions: 10,
            worker_panics: 11,
            sheds: 12,
            degraded: false,
            truncation: None,
        };
        a += a;
        assert_eq!(a.tuples_added, 2);
        assert_eq!(a.restarts, 14);
        assert_eq!(a.pruned_dead, 16);
        assert_eq!(a.pruned_bound, 18);
        assert_eq!(a.deferred_expansions, 20);
        assert_eq!(a.worker_panics, 22);
        assert_eq!(a.sheds, 24);
        assert!(!a.degraded);
        assert!(a.to_string().contains("answers=10"));
        assert!(a.to_string().contains("pruned_dead=16"));
    }

    #[test]
    fn degradation_markers_merge_sticky() {
        let mut clean = EvalStats::default();
        let degraded = EvalStats {
            degraded: true,
            truncation: Some(TruncationReason::TupleBudget),
            ..EvalStats::default()
        };
        clean += degraded;
        assert!(clean.degraded, "degradation is sticky under merge");
        assert_eq!(clean.truncation, Some(TruncationReason::TupleBudget));
        // Merging a clean run into a degraded one keeps the first reason.
        let mut merged = degraded;
        merged += EvalStats {
            truncation: Some(TruncationReason::PoolExhausted),
            ..EvalStats::default()
        };
        assert_eq!(merged.truncation, Some(TruncationReason::TupleBudget));
        assert!(merged.to_string().contains("degraded=true"));
    }
}
