//! Evaluation statistics, used by tests and by the ablation benchmarks.

use std::ops::AddAssign;

/// Counters accumulated during evaluation of a conjunct or query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Tuples added to the distance dictionary `D_R`.
    pub tuples_added: u64,
    /// Tuples removed from `D_R` and processed by `GetNext`.
    pub tuples_processed: u64,
    /// Calls to the `Succ` function.
    pub succ_calls: u64,
    /// Neighbour-list lookups against the graph store.
    pub neighbour_lookups: u64,
    /// Answers emitted.
    pub answers: u64,
    /// Tuples suppressed because their distance exceeded the current ψ bound
    /// (distance-aware evaluation only).
    pub suppressed: u64,
    /// Number of evaluation restarts performed by the escalating drivers.
    pub restarts: u64,
    /// Tuples (or transitions) dropped because their automaton state can
    /// never reach acceptance against this graph (cost-guided evaluation).
    pub pruned_dead: u64,
    /// Tuples dropped because `g + h` — the accumulated distance plus the
    /// admissible per-state accept lower bound — provably exceeded the
    /// distance ceiling (cost-guided evaluation; also counted in
    /// `suppressed`, since a higher ceiling could admit them).
    pub pruned_bound: u64,
    /// Deferred positive-cost expansions performed: tuples whose wildcard /
    /// edit / relaxation successors were materialised only once the distance
    /// cursor reached them (cost-guided evaluation).
    pub deferred_expansions: u64,
}

impl AddAssign for EvalStats {
    fn add_assign(&mut self, rhs: EvalStats) {
        self.tuples_added += rhs.tuples_added;
        self.tuples_processed += rhs.tuples_processed;
        self.succ_calls += rhs.succ_calls;
        self.neighbour_lookups += rhs.neighbour_lookups;
        self.answers += rhs.answers;
        self.suppressed += rhs.suppressed;
        self.restarts += rhs.restarts;
        self.pruned_dead += rhs.pruned_dead;
        self.pruned_bound += rhs.pruned_bound;
        self.deferred_expansions += rhs.deferred_expansions;
    }
}

impl std::fmt::Display for EvalStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "added={} processed={} succ={} lookups={} answers={} suppressed={} restarts={} \
             pruned_dead={} pruned_bound={} deferred={}",
            self.tuples_added,
            self.tuples_processed,
            self.succ_calls,
            self.neighbour_lookups,
            self.answers,
            self.suppressed,
            self.restarts,
            self.pruned_dead,
            self.pruned_bound,
            self.deferred_expansions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_accumulates() {
        let mut a = EvalStats {
            tuples_added: 1,
            tuples_processed: 2,
            succ_calls: 3,
            neighbour_lookups: 4,
            answers: 5,
            suppressed: 6,
            restarts: 7,
            pruned_dead: 8,
            pruned_bound: 9,
            deferred_expansions: 10,
        };
        a += a;
        assert_eq!(a.tuples_added, 2);
        assert_eq!(a.restarts, 14);
        assert_eq!(a.pruned_dead, 16);
        assert_eq!(a.pruned_bound, 18);
        assert_eq!(a.deferred_expansions, 20);
        assert!(a.to_string().contains("answers=10"));
        assert!(a.to_string().contains("pruned_dead=16"));
    }
}
