//! The distance dictionary `D_R`.
//!
//! The paper stores traversal tuples in a dictionary keyed by an
//! integer-boolean pair — the distance and whether the bucket holds 'final'
//! or 'non-final' tuples — whose values are linked lists manipulated only at
//! their head. Removal always takes a tuple from the minimum-distance bucket,
//! preferring the final bucket at that distance so that answers are returned
//! as early as possible (a refinement the paper credits with both speed-ups
//! and the completion of queries that previously exhausted memory).
//!
//! Distances are tiny bounded integers (sums of unit edit and relaxation
//! costs), which makes the classic *monotone bucket queue* the right
//! structure: a dense `Vec` of buckets indexed directly by distance, with a
//! cursor remembering the smallest possibly-occupied distance. `push` is an
//! array index plus a `Vec` push; `pop` takes from the cursor's bucket and
//! only advances the cursor over (cheap, usually few) empty buckets — no
//! tree rebalancing, no comparisons, no per-node allocation as in the
//! previous `BTreeMap` implementation. Within a bucket, `Vec` push/pop at
//! the tail is the O(1) "head" operation of the paper's linked lists.
//!
//! Pathologically large distances (possible with user-configured costs) fall
//! back to a sorted overflow map so memory stays bounded by the number of
//! *distinct* distances, not their magnitude.

use std::collections::BTreeMap;

use crate::eval::tuple::Tuple;

/// Distances below this bound use the dense bucket array; anything larger
/// (only reachable with exotic cost configurations) goes to the overflow
/// map.
const DENSE_LIMIT: u32 = 4096;

/// One distance's tuples, split by finality.
#[derive(Debug, Default)]
struct Bucket {
    /// Final tuples (pending answers), popped first when prioritised.
    fin: Vec<Tuple>,
    /// Non-final traversal tuples.
    other: Vec<Tuple>,
}

impl Bucket {
    fn is_empty(&self) -> bool {
        self.fin.is_empty() && self.other.is_empty()
    }
}

/// Indexed bucket priority queue over evaluation tuples.
#[derive(Debug, Default)]
pub struct DrQueue {
    /// `buckets[d]` holds the tuples at distance `d`.
    buckets: Vec<Bucket>,
    /// Lower bound on the smallest occupied distance in `buckets`.
    cursor: usize,
    /// Tuples at distances `>= DENSE_LIMIT`, keyed `(distance, rank)` like
    /// the original BTreeMap implementation.
    overflow: BTreeMap<(u32, u8), Vec<Tuple>>,
    len: usize,
    /// When false, final and non-final tuples share a bucket (ablation of the
    /// paper's final-tuple prioritisation).
    prioritize_final: bool,
}

impl DrQueue {
    /// Creates an empty queue.
    pub fn new(prioritize_final: bool) -> Self {
        DrQueue {
            buckets: Vec::new(),
            cursor: 0,
            overflow: BTreeMap::new(),
            len: 0,
            prioritize_final,
        }
    }

    /// Adds a tuple.
    pub fn push(&mut self, tuple: Tuple) {
        self.len += 1;
        let d = tuple.distance;
        if d < DENSE_LIMIT {
            let idx = d as usize;
            if idx >= self.buckets.len() {
                self.buckets.resize_with(idx + 1, Bucket::default);
            }
            if self.prioritize_final && tuple.is_final {
                self.buckets[idx].fin.push(tuple);
            } else {
                self.buckets[idx].other.push(tuple);
            }
            if idx < self.cursor {
                self.cursor = idx;
            }
        } else {
            let rank = if self.prioritize_final && tuple.is_final {
                0
            } else {
                1
            };
            self.overflow.entry((d, rank)).or_default().push(tuple);
        }
    }

    /// Removes a tuple from the minimum-distance bucket, final tuples first.
    pub fn pop(&mut self) -> Option<Tuple> {
        while self.cursor < self.buckets.len() {
            let bucket = &mut self.buckets[self.cursor];
            if let Some(tuple) = bucket.fin.pop().or_else(|| bucket.other.pop()) {
                self.len -= 1;
                return Some(tuple);
            }
            self.cursor += 1;
        }
        let (&key, bucket) = self.overflow.iter_mut().next()?;
        let tuple = bucket.pop();
        if bucket.is_empty() {
            self.overflow.remove(&key);
        }
        if tuple.is_some() {
            self.len -= 1;
        }
        tuple
    }

    /// Number of queued tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The smallest distance currently queued.
    pub fn min_distance(&self) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        let dense = self.buckets[self.cursor..]
            .iter()
            .position(|b| !b.is_empty())
            .map(|off| (self.cursor + off) as u32);
        dense.or_else(|| self.overflow.keys().next().map(|&(d, _)| d))
    }

    /// Whether any tuple at distance 0 is queued — the condition the paper
    /// uses to decide when the next batch of initial nodes must be released.
    pub fn has_distance_zero(&self) -> bool {
        self.buckets.first().is_some_and(|b| !b.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_automata::StateId;
    use omega_graph::NodeId;

    fn tuple(distance: u32, is_final: bool, node: u32) -> Tuple {
        Tuple {
            start: NodeId(node),
            node: NodeId(node),
            state: StateId(0),
            distance,
            is_final,
        }
    }

    #[test]
    fn pops_in_distance_order() {
        let mut q = DrQueue::new(true);
        q.push(tuple(3, false, 1));
        q.push(tuple(1, false, 2));
        q.push(tuple(2, false, 3));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|t| t.distance).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn final_tuples_first_at_equal_distance() {
        let mut q = DrQueue::new(true);
        q.push(tuple(1, false, 1));
        q.push(tuple(1, true, 2));
        q.push(tuple(0, false, 3));
        assert_eq!(q.pop().unwrap().node, NodeId(3));
        let next = q.pop().unwrap();
        assert!(next.is_final, "final tuple must be popped first");
        assert!(!q.pop().unwrap().is_final);
    }

    #[test]
    fn prioritisation_can_be_disabled() {
        let mut q = DrQueue::new(false);
        q.push(tuple(1, false, 1));
        q.push(tuple(1, true, 2));
        // LIFO within the single bucket: the last pushed (final) comes first,
        // but only because of insertion order, not because of its rank.
        assert_eq!(q.pop().unwrap().node, NodeId(2));
        assert_eq!(q.pop().unwrap().node, NodeId(1));
    }

    #[test]
    fn lifo_within_a_bucket() {
        let mut q = DrQueue::new(true);
        q.push(tuple(0, false, 1));
        q.push(tuple(0, false, 2));
        q.push(tuple(0, false, 3));
        assert_eq!(q.pop().unwrap().node, NodeId(3));
        assert_eq!(q.pop().unwrap().node, NodeId(2));
        assert_eq!(q.pop().unwrap().node, NodeId(1));
    }

    #[test]
    fn distance_zero_probe_and_len() {
        let mut q = DrQueue::new(true);
        assert!(!q.has_distance_zero());
        q.push(tuple(2, false, 1));
        assert!(!q.has_distance_zero());
        assert_eq!(q.min_distance(), Some(2));
        q.push(tuple(0, false, 2));
        assert!(q.has_distance_zero());
        assert_eq!(q.len(), 2);
        q.pop();
        assert!(!q.has_distance_zero());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn cursor_rewinds_when_cheaper_tuples_arrive_late() {
        // The refill of initial nodes can add distance-0 tuples after the
        // queue has already popped larger distances.
        let mut q = DrQueue::new(true);
        q.push(tuple(5, false, 1));
        assert_eq!(q.pop().unwrap().distance, 5);
        q.push(tuple(0, false, 2));
        q.push(tuple(3, false, 3));
        assert_eq!(q.pop().unwrap().distance, 0);
        assert_eq!(q.pop().unwrap().distance, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn overflow_distances_are_ordered_with_dense_ones() {
        let mut q = DrQueue::new(true);
        q.push(tuple(1_000_000, false, 1));
        q.push(tuple(2, false, 2));
        q.push(tuple(DENSE_LIMIT + 7, true, 3));
        assert_eq!(q.min_distance(), Some(2));
        assert_eq!(q.pop().unwrap().distance, 2);
        assert_eq!(q.min_distance(), Some(DENSE_LIMIT + 7));
        let t = q.pop().unwrap();
        assert_eq!(t.distance, DENSE_LIMIT + 7);
        assert!(t.is_final);
        assert_eq!(q.pop().unwrap().distance, 1_000_000);
        assert!(q.is_empty());
        assert_eq!(q.min_distance(), None);
    }
}
