//! The distance dictionary `D_R`.
//!
//! The paper stores traversal tuples in a dictionary keyed by an
//! integer-boolean pair — the distance and whether the bucket holds 'final'
//! or 'non-final' tuples — whose values are linked lists manipulated only at
//! their head. Removal always takes a tuple from the minimum-distance bucket,
//! preferring the final bucket at that distance so that answers are returned
//! as early as possible (a refinement the paper credits with both speed-ups
//! and the completion of queries that previously exhausted memory).
//!
//! Here the dictionary is a `BTreeMap` keyed by `(distance, rank)` with
//! `Vec` buckets used as stacks (push/pop at the tail is the O(1) "head"
//! operation of the paper's linked lists).

use std::collections::BTreeMap;

use crate::eval::tuple::Tuple;

/// Priority bucket queue over evaluation tuples.
#[derive(Debug, Default)]
pub struct DrQueue {
    buckets: BTreeMap<(u32, u8), Vec<Tuple>>,
    len: usize,
    /// When false, final and non-final tuples share a bucket (ablation of the
    /// paper's final-tuple prioritisation).
    prioritize_final: bool,
}

impl DrQueue {
    /// Creates an empty queue.
    pub fn new(prioritize_final: bool) -> Self {
        DrQueue {
            buckets: BTreeMap::new(),
            len: 0,
            prioritize_final,
        }
    }

    fn rank(&self, is_final: bool) -> u8 {
        if self.prioritize_final && is_final {
            0
        } else {
            1
        }
    }

    /// Adds a tuple.
    pub fn push(&mut self, tuple: Tuple) {
        let key = (tuple.distance, self.rank(tuple.is_final));
        self.buckets.entry(key).or_default().push(tuple);
        self.len += 1;
    }

    /// Removes a tuple from the minimum-distance bucket, final tuples first.
    pub fn pop(&mut self) -> Option<Tuple> {
        let (&key, bucket) = self.buckets.iter_mut().next()?;
        let tuple = bucket.pop();
        if bucket.is_empty() {
            self.buckets.remove(&key);
        }
        if tuple.is_some() {
            self.len -= 1;
        }
        tuple
    }

    /// Number of queued tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The smallest distance currently queued.
    pub fn min_distance(&self) -> Option<u32> {
        self.buckets.keys().next().map(|&(d, _)| d)
    }

    /// Whether any tuple at distance 0 is queued — the condition the paper
    /// uses to decide when the next batch of initial nodes must be released.
    pub fn has_distance_zero(&self) -> bool {
        self.min_distance() == Some(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_automata::StateId;
    use omega_graph::NodeId;

    fn tuple(distance: u32, is_final: bool, node: u32) -> Tuple {
        Tuple {
            start: NodeId(node),
            node: NodeId(node),
            state: StateId(0),
            distance,
            is_final,
        }
    }

    #[test]
    fn pops_in_distance_order() {
        let mut q = DrQueue::new(true);
        q.push(tuple(3, false, 1));
        q.push(tuple(1, false, 2));
        q.push(tuple(2, false, 3));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|t| t.distance).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn final_tuples_first_at_equal_distance() {
        let mut q = DrQueue::new(true);
        q.push(tuple(1, false, 1));
        q.push(tuple(1, true, 2));
        q.push(tuple(0, false, 3));
        assert_eq!(q.pop().unwrap().node, NodeId(3));
        let next = q.pop().unwrap();
        assert!(next.is_final, "final tuple must be popped first");
        assert!(!q.pop().unwrap().is_final);
    }

    #[test]
    fn prioritisation_can_be_disabled() {
        let mut q = DrQueue::new(false);
        q.push(tuple(1, false, 1));
        q.push(tuple(1, true, 2));
        // LIFO within the single bucket: the last pushed (final) comes first,
        // but only because of insertion order, not because of its rank.
        assert_eq!(q.pop().unwrap().node, NodeId(2));
        assert_eq!(q.pop().unwrap().node, NodeId(1));
    }

    #[test]
    fn lifo_within_a_bucket() {
        let mut q = DrQueue::new(true);
        q.push(tuple(0, false, 1));
        q.push(tuple(0, false, 2));
        q.push(tuple(0, false, 3));
        assert_eq!(q.pop().unwrap().node, NodeId(3));
        assert_eq!(q.pop().unwrap().node, NodeId(2));
        assert_eq!(q.pop().unwrap().node, NodeId(1));
    }

    #[test]
    fn distance_zero_probe_and_len() {
        let mut q = DrQueue::new(true);
        assert!(!q.has_distance_zero());
        q.push(tuple(2, false, 1));
        assert!(!q.has_distance_zero());
        assert_eq!(q.min_distance(), Some(2));
        q.push(tuple(0, false, 2));
        assert!(q.has_distance_zero());
        assert_eq!(q.len(), 2);
        q.pop();
        assert!(!q.has_distance_zero());
        assert_eq!(q.len(), 1);
    }
}
