//! The distance dictionary `D_R`.
//!
//! The paper stores traversal tuples in a dictionary keyed by an
//! integer-boolean pair — the distance and whether the bucket holds 'final'
//! or 'non-final' tuples — whose values are linked lists manipulated only at
//! their head. Removal always takes a tuple from the minimum-key bucket,
//! preferring the final bucket at that key so that answers are returned
//! as early as possible (a refinement the paper credits with both speed-ups
//! and the completion of queries that previously exhausted memory).
//!
//! Keys are tiny bounded integers (sums of unit edit and relaxation
//! costs), which makes the classic *monotone bucket queue* the right
//! structure: a dense `Vec` of buckets indexed directly by key, with a
//! cursor remembering the smallest possibly-occupied key. `push` is an
//! array index plus a `Vec` push; `pop` takes from the cursor's bucket and
//! only advances the cursor over (cheap, usually few) empty buckets — no
//! tree rebalancing, no comparisons, no per-node allocation as in the
//! previous `BTreeMap` implementation. Within a bucket, `Vec` push/pop at
//! the tail is the O(1) "head" operation of the paper's linked lists.
//!
//! The key is supplied by the caller: plain Dijkstra ordering passes the
//! tuple's accumulated distance `g`, cost-guided (A*) ordering passes
//! `f = g + h` where `h` is the compiled plan's admissible per-state accept
//! lower bound — because `h` is consistent, `f` is non-decreasing along any
//! derivation and the monotone bucket queue applies unchanged.
//!
//! Pathologically large keys (possible with user-configured costs) fall
//! back to a sorted overflow map so memory stays bounded by the number of
//! *distinct* keys, not their magnitude.

use std::collections::BTreeMap;

use crate::eval::tuple::Tuple;

/// Keys below this bound use the dense bucket array; anything larger
/// (only reachable with exotic cost configurations) goes to the overflow
/// map.
const DENSE_LIMIT: u32 = 4096;

/// One key's tuples, split by finality.
#[derive(Debug, Default)]
struct Bucket {
    /// Final tuples (pending answers), popped first when prioritised.
    fin: Vec<Tuple>,
    /// Non-final traversal tuples.
    other: Vec<Tuple>,
}

impl Bucket {
    fn is_empty(&self) -> bool {
        self.fin.is_empty() && self.other.is_empty()
    }
}

/// Indexed bucket priority queue over evaluation tuples.
#[derive(Debug, Default)]
pub struct DrQueue {
    /// `buckets[k]` holds the tuples pushed with key `k`.
    buckets: Vec<Bucket>,
    /// Lower bound on the smallest occupied key in `buckets`.
    cursor: usize,
    /// Tuples at keys `>= DENSE_LIMIT`, keyed `(key, rank)` like the
    /// original BTreeMap implementation.
    overflow: BTreeMap<(u32, u8), Vec<Tuple>>,
    len: usize,
    /// When false, final and non-final tuples share a bucket (ablation of the
    /// paper's final-tuple prioritisation).
    prioritize_final: bool,
}

impl DrQueue {
    /// Creates an empty queue.
    pub fn new(prioritize_final: bool) -> Self {
        DrQueue {
            buckets: Vec::new(),
            cursor: 0,
            overflow: BTreeMap::new(),
            len: 0,
            prioritize_final,
        }
    }

    /// Adds a tuple under `key` (its distance `g`, or `f = g + h` in
    /// cost-guided mode).
    pub fn push(&mut self, tuple: Tuple, key: u32) {
        self.len += 1;
        if key < DENSE_LIMIT {
            let idx = key as usize;
            if idx >= self.buckets.len() {
                self.buckets.resize_with(idx + 1, Bucket::default);
            }
            if self.prioritize_final && tuple.is_final {
                self.buckets[idx].fin.push(tuple);
            } else {
                self.buckets[idx].other.push(tuple);
            }
            if idx < self.cursor {
                self.cursor = idx;
            }
        } else {
            let rank = if self.prioritize_final && tuple.is_final {
                0
            } else {
                1
            };
            self.overflow.entry((key, rank)).or_default().push(tuple);
        }
    }

    /// Removes a tuple from the minimum-key bucket, final tuples first.
    pub fn pop(&mut self) -> Option<Tuple> {
        while self.cursor < self.buckets.len() {
            let bucket = &mut self.buckets[self.cursor];
            if let Some(tuple) = bucket.fin.pop().or_else(|| bucket.other.pop()) {
                self.len -= 1;
                return Some(tuple);
            }
            self.cursor += 1;
        }
        let (&key, bucket) = self.overflow.iter_mut().next()?;
        let tuple = bucket.pop();
        if bucket.is_empty() {
            self.overflow.remove(&key);
        }
        if tuple.is_some() {
            self.len -= 1;
        }
        tuple
    }

    /// Number of queued tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The smallest key currently queued.
    pub fn min_key(&self) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        let dense = self.buckets[self.cursor..]
            .iter()
            .position(|b| !b.is_empty())
            .map(|off| (self.cursor + off) as u32);
        dense.or_else(|| self.overflow.keys().next().map(|&(d, _)| d))
    }

    /// Whether any tuple with key `≤ key` is queued. The evaluator paces
    /// its seed releases with this: seeds enter at key `h(initial)` (0
    /// without cost guidance — the paper's "a distance-0 tuple is queued"
    /// condition is exactly the `key = 0` case), so the next batch is due
    /// only once no work at or below that key remains.
    pub fn has_key_at_most(&self, key: u32) -> bool {
        if self.len == 0 {
            return false;
        }
        // Buckets below the cursor are empty by the cursor invariant.
        let cap = ((key as usize).saturating_add(1)).min(self.buckets.len());
        if self.cursor < cap && self.buckets[self.cursor..cap].iter().any(|b| !b.is_empty()) {
            return true;
        }
        key >= DENSE_LIMIT && self.overflow.keys().next().is_some_and(|&(d, _)| d <= key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_automata::StateId;
    use omega_graph::NodeId;

    fn tuple(distance: u32, is_final: bool, node: u32) -> Tuple {
        Tuple {
            start: NodeId(node),
            node: NodeId(node),
            state: StateId(0),
            distance,
            is_final,
            deferred: false,
        }
    }

    /// Pushes under the tuple's own distance (plain Dijkstra keying).
    fn push_g(q: &mut DrQueue, t: Tuple) {
        q.push(t, t.distance);
    }

    #[test]
    fn pops_in_key_order() {
        let mut q = DrQueue::new(true);
        push_g(&mut q, tuple(3, false, 1));
        push_g(&mut q, tuple(1, false, 2));
        push_g(&mut q, tuple(2, false, 3));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|t| t.distance).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn key_can_differ_from_distance() {
        // A* keying: a tuple with a small g but a large h pops after a tuple
        // whose f is smaller.
        let mut q = DrQueue::new(true);
        q.push(tuple(0, false, 1), 5); // g = 0, h = 5
        q.push(tuple(3, false, 2), 3); // g = 3, h = 0
        assert_eq!(q.pop().unwrap().node, NodeId(2));
        assert_eq!(q.pop().unwrap().node, NodeId(1));
    }

    #[test]
    fn final_tuples_first_at_equal_key() {
        let mut q = DrQueue::new(true);
        push_g(&mut q, tuple(1, false, 1));
        push_g(&mut q, tuple(1, true, 2));
        push_g(&mut q, tuple(0, false, 3));
        assert_eq!(q.pop().unwrap().node, NodeId(3));
        let next = q.pop().unwrap();
        assert!(next.is_final, "final tuple must be popped first");
        assert!(!q.pop().unwrap().is_final);
    }

    #[test]
    fn prioritisation_can_be_disabled() {
        let mut q = DrQueue::new(false);
        push_g(&mut q, tuple(1, false, 1));
        push_g(&mut q, tuple(1, true, 2));
        // LIFO within the single bucket: the last pushed (final) comes first,
        // but only because of insertion order, not because of its rank.
        assert_eq!(q.pop().unwrap().node, NodeId(2));
        assert_eq!(q.pop().unwrap().node, NodeId(1));
    }

    #[test]
    fn lifo_within_a_bucket() {
        let mut q = DrQueue::new(true);
        push_g(&mut q, tuple(0, false, 1));
        push_g(&mut q, tuple(0, false, 2));
        push_g(&mut q, tuple(0, false, 3));
        assert_eq!(q.pop().unwrap().node, NodeId(3));
        assert_eq!(q.pop().unwrap().node, NodeId(2));
        assert_eq!(q.pop().unwrap().node, NodeId(1));
    }

    #[test]
    fn key_threshold_probe_tracks_queued_keys() {
        let mut q = DrQueue::new(true);
        assert!(!q.has_key_at_most(5));
        push_g(&mut q, tuple(3, false, 1));
        assert!(!q.has_key_at_most(2));
        assert!(q.has_key_at_most(3));
        assert!(q.has_key_at_most(9));
        q.pop();
        assert!(!q.has_key_at_most(u32::MAX));
        // Overflow keys participate when the threshold reaches them.
        push_g(&mut q, tuple(DENSE_LIMIT + 3, false, 2));
        assert!(!q.has_key_at_most(DENSE_LIMIT));
        assert!(q.has_key_at_most(DENSE_LIMIT + 3));
    }

    #[test]
    fn key_zero_probe_and_len() {
        let mut q = DrQueue::new(true);
        assert!(!q.has_key_at_most(0));
        push_g(&mut q, tuple(2, false, 1));
        assert!(!q.has_key_at_most(0));
        assert_eq!(q.min_key(), Some(2));
        push_g(&mut q, tuple(0, false, 2));
        assert!(q.has_key_at_most(0));
        assert_eq!(q.len(), 2);
        q.pop();
        assert!(!q.has_key_at_most(0));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn cursor_rewinds_when_cheaper_tuples_arrive_late() {
        // The refill of initial nodes can add key-0 tuples after the
        // queue has already popped larger keys.
        let mut q = DrQueue::new(true);
        push_g(&mut q, tuple(5, false, 1));
        assert_eq!(q.pop().unwrap().distance, 5);
        push_g(&mut q, tuple(0, false, 2));
        push_g(&mut q, tuple(3, false, 3));
        assert_eq!(q.pop().unwrap().distance, 0);
        assert_eq!(q.pop().unwrap().distance, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn overflow_keys_are_ordered_with_dense_ones() {
        let mut q = DrQueue::new(true);
        push_g(&mut q, tuple(1_000_000, false, 1));
        push_g(&mut q, tuple(2, false, 2));
        push_g(&mut q, tuple(DENSE_LIMIT + 7, true, 3));
        assert_eq!(q.min_key(), Some(2));
        assert_eq!(q.pop().unwrap().distance, 2);
        assert_eq!(q.min_key(), Some(DENSE_LIMIT + 7));
        let t = q.pop().unwrap();
        assert_eq!(t.distance, DENSE_LIMIT + 7);
        assert!(t.is_final);
        assert_eq!(q.pop().unwrap().distance, 1_000_000);
        assert!(q.is_empty());
        assert_eq!(q.min_key(), None);
    }
}
