//! Evaluation tuples.

use omega_automata::StateId;
use omega_graph::NodeId;

/// A traversal tuple `(v, n, s, d, f)` as described in Section 3.3 of the
/// paper: visiting node `n` in automaton state `s`, having started from node
/// `v`, at distance `d`; `is_final` marks tuples that represent a complete
/// answer waiting to be emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tuple {
    /// The node evaluation started from (`v`).
    pub start: NodeId,
    /// The node currently being visited (`n`).
    pub node: NodeId,
    /// The automaton state (`s`).
    pub state: StateId,
    /// Accumulated distance (`d`).
    pub distance: u32,
    /// Whether this is a 'final' tuple (a pending answer) rather than a
    /// traversal frontier entry.
    pub is_final: bool,
    /// Cost-guided evaluation: a placeholder re-queued at the key of the
    /// tuple's cheapest positive-cost successor. When it pops, the
    /// positive-cost transitions (wildcards, edits, relaxations) of the
    /// original `(v, n, s)` tuple — whose `distance` this tuple still
    /// carries — are expanded; until then none of them occupy `D_R`.
    pub deferred: bool,
}

impl Tuple {
    /// A non-final seed tuple `(v, v, s0, d, false)`.
    pub fn seed(node: NodeId, state: StateId, distance: u32) -> Tuple {
        Tuple {
            start: node,
            node,
            state,
            distance,
            is_final: false,
            deferred: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_starts_at_itself() {
        let t = Tuple::seed(NodeId(4), StateId(0), 2);
        assert_eq!(t.start, t.node);
        assert_eq!(t.distance, 2);
        assert!(!t.is_final);
    }
}
