//! Parallel conjunct evaluation: one worker thread per conjunct, feeding the
//! ranked join through a bounded channel.
//!
//! Multi-conjunct queries rank-join per-conjunct answer streams that are
//! completely independent of each other: each conjunct evaluator only reads
//! the shared frozen [`GraphStore`] and its own compiled plan. This module
//! moves those evaluators onto worker threads so the streams are *produced*
//! concurrently while the join keeps *consuming* them in exactly the order
//! it always did — [`ParallelStream`] implements [`AnswerStream`] by
//! receiving from the worker's channel, so the join cannot observe any
//! difference from sequential evaluation except wall-clock time:
//!
//! * answers arrive in the same per-stream order (the channel is FIFO and
//!   the worker runs the identical deterministic evaluator),
//! * errors (`ResourceExhausted`, `DeadlineExceeded`, …) travel in-stream at
//!   the same position they would occur sequentially,
//! * statistics are mirrored into a shared snapshot after every pull, so
//!   [`AnswerStream::stats`] reflects the worker's progress and, once the
//!   stream is drained, equals the sequential counters exactly.
//!
//! Lifecycle discipline is strict because answer streams are lazy iterators
//! handed to callers: every worker polls the execution's shared
//! [`CancelToken`] (and the wall-clock deadline) both inside the evaluator
//! loop — every 64 tuples — and while blocked on a full channel, and
//! [`ParallelStream`] cancels the token and **joins** its worker on drop.
//! Dropping an [`crate::service::Answers`] mid-stream therefore reclaims
//! every thread promptly; [`live_parallel_workers`] exposes the global
//! worker gauge the concurrency tests assert leak-freedom with.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use omega_graph::GraphStore;
use omega_ontology::Ontology;

use crate::answer::ConjunctAnswer;
use crate::error::{OmegaError, Result};
use crate::eval::cancel::CancelToken;
use crate::eval::conjunct::ConjunctEvaluator;
use crate::eval::disjunction::DisjunctionEvaluator;
use crate::eval::distance_aware::DistanceAwareEvaluator;
use crate::eval::fault::{fire as fault_fire, FaultPoint};
use crate::eval::options::EvalOptions;
use crate::eval::plan::ConjunctPlan;
use crate::eval::stats::EvalStats;
use crate::eval::AnswerStream;
use crate::service::GraphData;

/// How long a worker blocked on a full channel sleeps between cancellation
/// polls. This bounds how far past a cancellation/deadline a blocked worker
/// can live.
const SEND_POLL: Duration = Duration::from_micros(200);

/// A conjunct evaluation job dispatched to the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A small shared thread pool amortising worker-thread spawns across
/// executions.
///
/// The pool is deliberately *non-queueing*: `execute` either
/// hands the job to an idle pooled thread or spawns a fresh thread for it,
/// never parks it behind other jobs. Queueing would deadlock the rank join —
/// a queued conjunct's consumer can be blocked waiting on it while the jobs
/// ahead of it are themselves blocked on their full channels, which only
/// this same consumer drains. Threads re-enter the idle list when their job
/// finishes (up to `max_idle`), so steady-state executions reuse threads
/// instead of spawning.
pub struct WorkerPool {
    max_idle: usize,
    idle: Mutex<Vec<SyncSender<Job>>>,
}

impl WorkerPool {
    /// Creates a pool keeping at most `max_idle` threads parked between
    /// executions.
    pub fn new(max_idle: usize) -> Arc<WorkerPool> {
        Arc::new(WorkerPool {
            max_idle,
            idle: Mutex::new(Vec::new()),
        })
    }

    /// A pool sized for conjunct fan-out: at least 4 parked threads, more on
    /// wider machines.
    pub fn with_default_size() -> Arc<WorkerPool> {
        let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
        WorkerPool::new(parallelism.max(4))
    }

    /// Runs `job` on an idle pooled thread if one is available, otherwise on
    /// a freshly spawned thread (which joins the idle list afterwards).
    /// `Err` is only possible when a fresh spawn fails.
    fn execute(self: &Arc<Self>, job: Job) -> std::io::Result<()> {
        let mut job = job;
        loop {
            let worker = self.idle.lock().unwrap_or_else(|e| e.into_inner()).pop();
            let Some(worker) = worker else {
                return self.spawn_thread(job);
            };
            // A send can only fail if the thread died (e.g. a panicking
            // job); take the next idle thread or spawn.
            match worker.send(job) {
                Ok(()) => return Ok(()),
                Err(std::sync::mpsc::SendError(back)) => job = back,
            }
        }
    }

    fn spawn_thread(self: &Arc<Self>, job: Job) -> std::io::Result<()> {
        let pool = Arc::downgrade(self);
        std::thread::Builder::new()
            .name("omega-conjunct".to_owned())
            .spawn(move || {
                let mut job = job;
                loop {
                    job();
                    // Re-enter the idle list (unless the pool is gone or
                    // already full), then park until the next job. The
                    // rendezvous sender is *moved* into the idle list: when
                    // the pool (and with it the list) is dropped, the recv
                    // below disconnects and the parked thread exits instead
                    // of leaking.
                    let Some(pool) = pool.upgrade() else { return };
                    let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(0);
                    {
                        let mut idle = pool.idle.lock().unwrap_or_else(|e| e.into_inner());
                        if idle.len() >= pool.max_idle {
                            return;
                        }
                        idle.push(tx);
                    }
                    drop(pool); // don't keep the pool alive while parked
                    match rx.recv() {
                        Ok(next) => job = next,
                        Err(_) => return,
                    }
                }
            })
            .map(drop)
    }
}

/// Gauge of currently live conjunct worker threads (process-wide).
static LIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Number of conjunct worker threads currently alive in this process.
///
/// Because [`ParallelStream`] joins its worker on drop, this returns to its
/// previous value as soon as every outstanding answer stream has been
/// dropped — the concurrency test suite uses it as a thread-leak detector.
pub fn live_parallel_workers() -> usize {
    LIVE_WORKERS.load(Ordering::SeqCst)
}

/// Drop guard bumping [`LIVE_WORKERS`] for the lifetime of a worker body,
/// balanced even when the evaluator panics.
struct WorkerGuard;

impl WorkerGuard {
    fn new() -> WorkerGuard {
        LIVE_WORKERS.fetch_add(1, Ordering::SeqCst);
        WorkerGuard
    }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        LIVE_WORKERS.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The recipe for one conjunct's evaluator, chosen on the caller's thread
/// (so plan compilation and caching behave identically in both modes) and
/// materialised either inline or inside a worker. Cloning is `Arc` bumps.
#[derive(Clone)]
pub(crate) enum StreamPlan {
    /// Plain ranked evaluation ([`ConjunctEvaluator`]).
    Plain(Arc<ConjunctPlan>),
    /// Escalating-ψ distance-aware driver ([`DistanceAwareEvaluator`]).
    DistanceAware(Arc<ConjunctPlan>),
    /// Decomposed top-level alternation ([`DisjunctionEvaluator`]).
    Disjunction(Vec<Arc<ConjunctPlan>>),
}

impl StreamPlan {
    /// Builds the evaluator this plan describes, borrowing `graph` and
    /// `ontology` for the stream's lifetime.
    pub(crate) fn materialize<'a>(
        self,
        graph: &'a GraphStore,
        ontology: &'a Ontology,
        options: Arc<EvalOptions>,
    ) -> Box<dyn AnswerStream + 'a> {
        match self {
            StreamPlan::Plain(plan) => {
                Box::new(ConjunctEvaluator::new(plan, graph, ontology, options, None))
            }
            StreamPlan::DistanceAware(plan) => {
                Box::new(DistanceAwareEvaluator::new(plan, graph, ontology, options))
            }
            StreamPlan::Disjunction(branches) => Box::new(DisjunctionEvaluator::from_plans(
                branches, graph, ontology, options,
            )),
        }
    }
}

/// One message on the worker channel: an answer, end-of-stream, or the
/// error that terminated evaluation.
type Item = Result<Option<ConjunctAnswer>>;

/// An [`AnswerStream`] produced on a dedicated worker thread.
///
/// The consumer side is single-threaded and order-preserving: `next_answer`
/// is a channel receive, so the stream is indistinguishable from running the
/// same evaluator inline (modulo wall-clock). The worker is cancelled and
/// joined on drop.
pub struct ParallelStream {
    /// `Some` until drop, which disconnects the channel *before* awaiting
    /// the worker so a blocked send can never outlive the stream.
    rx: Option<Receiver<Item>>,
    stats: Arc<Mutex<EvalStats>>,
    cancel: CancelToken,
    deadline: Option<Instant>,
    /// Completion signal: the worker job sends its (possibly panicked)
    /// outcome here as its very last action.
    completion: Receiver<std::thread::Result<()>>,
    joined: bool,
    done: bool,
}

impl ParallelStream {
    /// Dispatches a worker evaluating `plan` over `data` to the pool and
    /// returns the consuming stream. On dispatch failure (fresh thread spawn
    /// failed with no idle pooled thread) the plan is handed back so the
    /// caller can fall back to inline evaluation.
    pub(crate) fn spawn(
        plan: StreamPlan,
        data: Arc<GraphData>,
        options: Arc<EvalOptions>,
        pool: &Arc<WorkerPool>,
    ) -> std::result::Result<ParallelStream, StreamPlan> {
        // Injected spawn failure: the dispatch reports the same outcome a
        // genuine thread-spawn error would, and the caller falls back to
        // inline evaluation — the query still completes.
        if fault_fire(FaultPoint::WorkerSpawn) {
            return Err(plan);
        }
        let capacity = options.parallel_channel_capacity.max(1);
        let (tx, rx) = std::sync::mpsc::sync_channel::<Item>(capacity);
        let (completion_tx, completion) = std::sync::mpsc::channel();
        let stats = Arc::new(Mutex::new(EvalStats::default()));
        let cancel = options.cancel.clone().unwrap_or_default();
        let deadline = options.deadline;
        let shared_stats = Arc::clone(&stats);
        let worker_options = Arc::clone(&options);
        // The job gets a clone of the plan (cheap `Arc` bumps) because a
        // failed dispatch consumes it; the original is handed back for the
        // inline fallback.
        let worker_plan = plan.clone();
        let job: Job = Box::new(move || {
            // Contain a panicking evaluator: pooled threads survive it, and
            // the payload reaches the consumer through the completion
            // channel instead of killing an unrelated thread.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                worker_body(worker_plan, data, worker_options, tx, shared_stats)
            }));
            let _ = completion_tx.send(result);
        });
        match pool.execute(job) {
            Ok(()) => Ok(ParallelStream {
                rx: Some(rx),
                stats,
                cancel,
                deadline,
                completion,
                joined: false,
                done: false,
            }),
            Err(_) => Err(plan),
        }
    }

    /// Awaits the worker job's completion. A worker panic is converted into
    /// a typed [`OmegaError::Internal`] (and counted in
    /// [`EvalStats::worker_panics`]) instead of being re-raised: the
    /// consumer's thread may be a server request handler, and a violated
    /// evaluator invariant should fail one request, not the process.
    fn join_worker(&mut self) -> Option<OmegaError> {
        if self.joined {
            return None;
        }
        self.joined = true;
        match self.completion.recv() {
            Ok(Err(payload)) => {
                self.stats
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .worker_panics += 1;
                Some(OmegaError::Internal {
                    message: format!(
                        "conjunct worker panicked: {}",
                        panic_message(payload.as_ref())
                    ),
                })
            }
            _ => None,
        }
    }
}

/// Best-effort extraction of a panic payload's message (the standard library
/// panics with `&str` or `String` payloads).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

impl AnswerStream for ParallelStream {
    fn next_answer(&mut self) -> Result<Option<ConjunctAnswer>> {
        if self.done {
            return Ok(None);
        }
        // The receiver lives until drop; `done` guards the post-drop state.
        let Some(rx) = self.rx.as_ref() else {
            return Ok(None);
        };
        match rx.recv() {
            Ok(Ok(Some(answer))) => Ok(Some(answer)),
            Ok(Ok(None)) => {
                self.done = true;
                match self.join_worker() {
                    Some(e) => Err(e),
                    None => Ok(None),
                }
            }
            Ok(Err(e)) => {
                self.done = true;
                self.join_worker();
                Err(e)
            }
            // The worker exited without a terminal message: it panicked
            // (surfaced as a typed `Internal` error by join_worker) or it
            // bailed out of a blocked send on cancellation/deadline. Report
            // the cause the consumer can act on rather than a bare hang-up.
            Err(_) => {
                self.done = true;
                if let Some(e) = self.join_worker() {
                    return Err(e);
                }
                if self.deadline.is_some_and(|d| Instant::now() >= d) {
                    Err(OmegaError::DeadlineExceeded)
                } else {
                    Err(OmegaError::Cancelled)
                }
            }
        }
    }

    fn stats(&self) -> EvalStats {
        *self.stats.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Drop for ParallelStream {
    fn drop(&mut self) {
        // Cancelling the shared token ends the whole execution, which is the
        // only situation in which a join input is dropped. The worker
        // observes the token within its check interval whether it is mid-
        // traversal or blocked on the full channel; awaiting its completion
        // here is what guarantees no worker outlives its answer stream.
        self.cancel.cancel();
        // Disconnect the channel before waiting: a worker blocked in a full
        // send then exits on `Disconnected` even if it somehow holds a
        // token that is not the shared one (defence in depth — the service
        // layer always installs the shared token).
        self.rx = None;
        // A panic here cannot be raised (panicking inside drop would abort
        // the process), but join_worker still records it in the shared
        // stats, so an execution abandoned mid-stream does not silently
        // lose the fact that a worker died.
        let _ = self.join_worker();
    }
}

/// The worker loop: drive the evaluator, mirror its stats, push each result
/// into the bounded channel, stop on a terminal item or cancellation.
fn worker_body(
    plan: StreamPlan,
    data: Arc<GraphData>,
    options: Arc<EvalOptions>,
    tx: SyncSender<Item>,
    stats: Arc<Mutex<EvalStats>>,
) {
    let _guard = WorkerGuard::new();
    let mut stream = plan.materialize(&data.graph, &data.ontology, Arc::clone(&options));
    loop {
        let item = stream.next_answer();
        *stats.lock().unwrap_or_else(|e| e.into_inner()) = stream.stats();
        let terminal = !matches!(item, Ok(Some(_)));
        if !blocking_send(&tx, item, &options) || terminal {
            break;
        }
    }
}

/// Sends one item, polling the cancellation token and deadline while the
/// channel is full. Returns `false` when the send was abandoned (receiver
/// gone, execution cancelled, or deadline passed).
fn blocking_send(tx: &SyncSender<Item>, item: Item, options: &EvalOptions) -> bool {
    let mut item = item;
    loop {
        // Injected channel failure: the worker abandons the send exactly as
        // if the receiver had disconnected; the consumer observes a typed
        // cancellation/deadline error, never a hang.
        if fault_fire(FaultPoint::ChannelSend) {
            return false;
        }
        match tx.try_send(item) {
            Ok(()) => return true,
            Err(TrySendError::Disconnected(_)) => return false,
            Err(TrySendError::Full(back)) => {
                if options
                    .cancel
                    .as_ref()
                    .is_some_and(CancelToken::is_cancelled)
                {
                    return false;
                }
                if options.deadline.is_some_and(|d| Instant::now() >= d) {
                    return false;
                }
                item = back;
                std::thread::sleep(SEND_POLL);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::plan::compile_conjunct;
    use crate::query::parser::parse_query;

    fn data() -> Arc<GraphData> {
        let mut g = GraphStore::new();
        g.add_triple("alice", "knows", "bob");
        g.add_triple("bob", "knows", "carol");
        g.add_triple("carol", "knows", "dave");
        g.add_triple("alice", "worksAt", "acme");
        g.add_triple("bob", "worksAt", "acme");
        g.freeze();
        Arc::new(GraphData {
            graph: g,
            ontology: Arc::new(Ontology::new()),
            epoch: 0,
        })
    }

    fn plan_for(data: &GraphData, query: &str, options: &EvalOptions) -> Arc<ConjunctPlan> {
        let q = parse_query(query).unwrap();
        Arc::new(compile_conjunct(&q.conjuncts[0], &data.graph, &data.ontology, options).unwrap())
    }

    fn drain(stream: &mut dyn AnswerStream) -> Vec<(u32, u32, u32)> {
        let mut out = Vec::new();
        while let Some(a) = stream.next_answer().unwrap() {
            out.push((a.x.0, a.y.0, a.distance));
        }
        out
    }

    #[test]
    fn parallel_stream_matches_inline_evaluation_and_stats() {
        let data = data();
        for query in [
            "(?X, ?Y) <- (?X, knows+, ?Y)",
            "(?X) <- APPROX (alice, knows.knows, ?X)",
        ] {
            // One token per execution, as the service layer guarantees —
            // dropping a stream cancels its execution's token.
            let options = Arc::new(EvalOptions::default().with_cancel_token(CancelToken::new()));
            let plan = plan_for(&data, query, &options);
            let mut inline = StreamPlan::Plain(Arc::clone(&plan)).materialize(
                &data.graph,
                &data.ontology,
                Arc::clone(&options),
            );
            let expected = drain(inline.as_mut());
            let expected_stats = inline.stats();

            let pool = WorkerPool::with_default_size();
            let mut parallel = ParallelStream::spawn(
                StreamPlan::Plain(plan),
                Arc::clone(&data),
                Arc::clone(&options),
                &pool,
            )
            .ok()
            .expect("worker spawns");
            assert_eq!(
                drain(&mut parallel),
                expected,
                "answers diverge for {query}"
            );
            assert_eq!(
                parallel.stats(),
                expected_stats,
                "stats diverge for {query}"
            );
        }
    }

    #[test]
    fn dropping_the_stream_reclaims_the_worker() {
        let data = data();
        // Capacity 1 so the worker is parked on a full channel when dropped.
        let options = Arc::new(
            EvalOptions::default()
                .with_parallel_channel_capacity(1)
                .with_cancel_token(CancelToken::new()),
        );
        let plan = plan_for(&data, "(?X, ?Y) <- APPROX (?X, knows+, ?Y)", &options);
        // A test-local pool gives an interference-free observable: the
        // thread only parks in *this* pool's idle list after its job ends.
        // (The global `live_parallel_workers` gauge is asserted on in
        // tests/concurrency.rs, which serialises its tests; sibling unit
        // tests here may legitimately be running workers concurrently.)
        let pool = WorkerPool::new(2);
        let mut stream =
            ParallelStream::spawn(StreamPlan::Plain(plan), Arc::clone(&data), options, &pool)
                .ok()
                .expect("worker spawns");
        // Consume one answer, then abandon the stream mid-flight. Drop
        // blocks until the worker's job has completed.
        assert!(stream.next_answer().unwrap().is_some());
        drop(stream);
        // The reclaimed thread re-registers as idle shortly after.
        let deadline = Instant::now() + Duration::from_secs(5);
        while pool.idle.lock().unwrap().is_empty() {
            assert!(
                Instant::now() < deadline,
                "worker never returned to the pool after stream drop"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn pool_parks_and_reuses_threads() {
        let data = data();
        let pool = WorkerPool::new(2);
        for _ in 0..3 {
            let options = Arc::new(EvalOptions::default().with_cancel_token(CancelToken::new()));
            let plan = plan_for(&data, "(?X) <- (alice, knows, ?X)", &options);
            let mut stream =
                ParallelStream::spawn(StreamPlan::Plain(plan), Arc::clone(&data), options, &pool)
                    .ok()
                    .expect("worker spawns");
            while stream.next_answer().unwrap().is_some() {}
        }
        // The job's completion signal precedes re-registration, so give the
        // thread a moment to park itself.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let idle = pool.idle.lock().unwrap().len();
            if idle >= 1 {
                assert!(idle <= 2, "idle list respects max_idle");
                break;
            }
            assert!(Instant::now() < deadline, "worker thread never parked");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn worker_panic_surfaces_as_typed_internal_error() {
        // Reproduce the exact wiring of a panicked worker job: the payload
        // reaches the completion channel, the answer channel disconnects
        // with no terminal message.
        let (tx, rx) = std::sync::mpsc::sync_channel::<Item>(1);
        let (completion_tx, completion) = std::sync::mpsc::channel();
        let stats = Arc::new(Mutex::new(EvalStats::default()));
        let handle = std::thread::spawn(move || {
            let result = std::panic::catch_unwind(|| {
                drop(tx); // unwinding drops the sender in the real job too
                panic!("visited-set invariant violated");
            });
            let _ = completion_tx.send(result);
        });
        let mut stream = ParallelStream {
            rx: Some(rx),
            stats: Arc::clone(&stats),
            cancel: CancelToken::new(),
            deadline: None,
            completion,
            joined: false,
            done: false,
        };
        match stream.next_answer() {
            Err(OmegaError::Internal { message }) => {
                assert!(
                    message.contains("visited-set invariant violated"),
                    "panic payload must reach the error: {message}"
                );
            }
            other => panic!("expected Internal, got {other:?}"),
        }
        assert_eq!(stream.stats().worker_panics, 1, "panic is counted");
        assert!(
            stream.next_answer().unwrap().is_none(),
            "errored stream is fused, not poisoned"
        );
        handle.join().unwrap();
    }

    #[test]
    fn exhausted_stream_is_fused() {
        let data = data();
        let options = Arc::new(EvalOptions::default().with_cancel_token(CancelToken::new()));
        let plan = plan_for(&data, "(?X) <- (alice, knows, ?X)", &options);
        let pool = WorkerPool::with_default_size();
        let mut stream =
            ParallelStream::spawn(StreamPlan::Plain(plan), Arc::clone(&data), options, &pool)
                .ok()
                .expect("worker spawns");
        while stream.next_answer().unwrap().is_some() {}
        assert!(stream.next_answer().unwrap().is_none(), "stream is fused");
    }
}
