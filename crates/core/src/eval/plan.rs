//! Conjunct compilation — the automaton-building half of the paper's `Open`
//! procedure.
//!
//! Compiling a conjunct `(X, R, Y)` produces a [`ConjunctPlan`]:
//!
//! 1. the weighted NFA for `R` is built (Thompson construction), augmented
//!    for APPROX or RELAX if the conjunct is prefixed by one of them, and
//!    ε-freed;
//! 2. a conjunct `(?X, R, C)` is transformed into `(C, R-, ?X)` by reversing
//!    the regular expression, so that evaluation always starts from a
//!    constant when one is available (Case 2 of `Open`);
//! 3. the seed specification records where evaluation starts: a constant
//!    node (plus its class ancestors under RELAX), or the nodes selected by
//!    the initial transitions' labels for `(?X, R, ?Y)` conjuncts.
//!
//! The plan is independent of evaluation state, so the escalating drivers
//! (distance-aware, disjunction) can run it several times without paying the
//! compilation cost again.

use omega_automata::{
    approximate, build_nfa, relax, remove_epsilons, MinCostToAccept, StateId, TransitionLabel,
    WeightedNfa,
};
use omega_graph::{Direction, GraphStore, NodeId};
use omega_ontology::Ontology;
use omega_regex::RpqRegex;

use crate::error::{OmegaError, Result};
use crate::eval::options::EvalOptions;
use crate::query::ast::{Conjunct, QueryMode, Term};

/// Where a conjunct's evaluation starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeedSpec {
    /// Start from fixed nodes, each with an initial distance (the constant
    /// itself at 0 and, under RELAX, its class ancestors at `k·β`).
    Fixed(Vec<(NodeId, u32)>),
    /// Start from every node of the graph; `as_final` is set when the
    /// initial state is final with weight 0, in which case every node is
    /// already an answer `(n, n)` at distance 0.
    AllNodes {
        /// Whether seed tuples are immediately final.
        as_final: bool,
    },
    /// Start from the nodes that have at least one edge matching one of the
    /// automaton's initial-transition labels.
    MatchingInitial,
}

/// A compiled conjunct, ready for (repeated) evaluation.
#[derive(Debug, Clone)]
pub struct ConjunctPlan {
    /// Evaluation mode of the conjunct.
    pub mode: QueryMode,
    /// The original subject term.
    pub subject: Term,
    /// The original object term.
    pub object: Term,
    /// The regular expression actually compiled (reversed for Case 2).
    pub regex: RpqRegex,
    /// Whether the conjunct was reversed (`(?X, R, C)` → `(C, R-, ?X)`), in
    /// which case emitted answers swap their endpoints back.
    pub reversed: bool,
    /// The ε-free weighted automaton.
    pub nfa: WeightedNfa,
    /// Seed specification.
    pub seeds: SeedSpec,
    /// If the (possibly reversed) conjunct also has a constant object, the
    /// node answers must end at.
    pub final_constraint: Option<NodeId>,
    /// Whether subject and object are the same variable, so answers must be
    /// node pairs `(n, n)`.
    pub require_equal_endpoints: bool,
    /// The node the subject constant names, used to normalise answer
    /// bindings when RELAX starts from class ancestors.
    pub subject_node: Option<NodeId>,
    /// The node the object constant names.
    pub object_node: Option<NodeId>,
    /// Whether RDFS inference applies when matching transitions (RELAX only).
    pub inference: bool,
    /// The escalation step φ: the smallest positive cost in the automaton
    /// (1 when no flexible operator applies, so escalation terminates).
    pub phi: u32,
    /// Admissible per-state accept lower bounds `h`, computed against what
    /// the data graph can actually fire (labels with zero edges are treated
    /// as absent). Cost-guided evaluation orders the tuple queue by
    /// `f = g + h[state]`, prunes tuples with `g + h` beyond the distance
    /// ceiling, and never expands into dead states.
    pub bounds: MinCostToAccept,
    /// Per-state deferral offsets: the minimum of `cost + h[target]` over
    /// the state's live positive-cost transitions (`u32::MAX` when it has
    /// none). A tuple's positive-cost expansion is postponed to key
    /// `g + defer_delta[state]` — the earliest key at which any of those
    /// successors could matter.
    defer_delta: Vec<u32>,
    /// Estimated number of seed nodes this conjunct's evaluation starts
    /// from, read off the frozen label statistics. The rank join orders its
    /// input streams by this estimate (most selective first).
    pub estimated_seed_count: u64,
}

impl ConjunctPlan {
    /// Variables bound by this conjunct in `(subject, object)` order.
    pub fn variables(&self) -> Vec<&str> {
        [&self.subject, &self.object]
            .into_iter()
            .filter_map(Term::as_variable)
            .collect()
    }

    /// The deferral offset of `state`: the smallest `cost + h[target]` over
    /// its live positive-cost transitions, or `u32::MAX` when deferred
    /// expansion can never produce anything from this state.
    #[inline]
    pub fn defer_delta(&self, state: StateId) -> u32 {
        self.defer_delta[state.index()]
    }
}

/// Compiles `conjunct` against the data graph and ontology.
pub fn compile_conjunct(
    conjunct: &Conjunct,
    graph: &GraphStore,
    ontology: &Ontology,
    options: &EvalOptions,
) -> Result<ConjunctPlan> {
    // Case analysis on which ends are constants (Cases 1–3 of `Open`).
    let subject_const = conjunct.subject.as_constant();
    let object_const = conjunct.object.as_constant();

    let resolve = |name: &str| -> Result<NodeId> {
        graph
            .node_by_label(name)
            .ok_or_else(|| OmegaError::UnknownConstant(name.to_owned()))
    };
    let subject_node = subject_const.map(&resolve).transpose()?;
    let object_node = object_const.map(&resolve).transpose()?;

    let (regex, reversed) = match (subject_node, object_node) {
        // (?X, R, C): evaluate (C, R-, ?X).
        (None, Some(_)) => (conjunct.regex.reverse(), true),
        // (C1, R, C2): both directions are available — pick the one whose
        // start constant has the smaller first-hop fan-out (ties keep the
        // forward direction, the historical behaviour). RELAX is excluded
        // because its seed-side class relaxation is tied to the start
        // constant.
        (Some(subject), Some(object))
            if options.cost_guided && conjunct.mode != QueryMode::Relax =>
        {
            let forward = first_hop_fanout(&conjunct.regex, subject, graph);
            let reversed_regex = conjunct.regex.reverse();
            let backward = first_hop_fanout(&reversed_regex, object, graph);
            if backward < forward {
                (reversed_regex, true)
            } else {
                (conjunct.regex.clone(), false)
            }
        }
        _ => (conjunct.regex.clone(), false),
    };

    // Build, augment and ε-free the automaton.
    let base = build_nfa(&regex, graph);
    let augmented = match conjunct.mode {
        QueryMode::Exact => base,
        QueryMode::Approx => approximate(&base, &options.approx),
        QueryMode::Relax => relax(&base, ontology, &options.relax, graph),
    };
    let nfa = remove_epsilons(&augmented);

    // Seeds: the start constant (after reversal this is the object constant
    // when only the object was constant), or label-guided seeding.
    let start_node = if reversed { object_node } else { subject_node };
    let seeds = match start_node {
        Some(node) => {
            let mut fixed = vec![(node, 0)];
            if conjunct.mode == QueryMode::Relax && ontology.is_class(node) {
                // Rule (i) for classes: also start from every superclass, at
                // β per step up the hierarchy; nearer (more specific) classes
                // first, as `GetAncestors` prescribes.
                for (ancestor, dist) in ontology.superclasses(node) {
                    fixed.push((ancestor, dist * options.relax.beta));
                }
            }
            SeedSpec::Fixed(fixed)
        }
        None => {
            let initial_final_weight = nfa.final_weight(nfa.initial());
            match initial_final_weight {
                Some(0) => SeedSpec::AllNodes { as_final: true },
                Some(_) => SeedSpec::AllNodes { as_final: false },
                None => SeedSpec::MatchingInitial,
            }
        }
    };

    // A constant at the non-start end becomes a final-state constraint.
    let final_constraint = if reversed { subject_node } else { object_node };
    // When both ends are constants evaluation starts from the subject and the
    // object constrains the final state; `final_constraint` handles that. If
    // both ends are the *same variable*, answers must loop back to the start.
    let require_equal_endpoints = match (&conjunct.subject, &conjunct.object) {
        (Term::Variable(a), Term::Variable(b)) => a == b,
        _ => false,
    };

    let phi = match conjunct.mode {
        QueryMode::Exact => 1,
        QueryMode::Approx => options.approx.min_cost().max(1),
        QueryMode::Relax => options.relax.min_cost().max(1),
    };

    // Graph-aware accept lower bounds: a transition whose label can never
    // match an edge of *this* graph is treated as absent, so states whose
    // remaining path depends on such labels become dead (or acquire a
    // positive bound through the edit/relaxation detours around them). The
    // predicate under-approximates impossibility — an existing label still
    // counts as live even if no edge of it is reachable — which is exactly
    // what admissibility requires.
    let inference = conjunct.mode == QueryMode::Relax && options.inference;
    let type_label = graph.type_label();
    let label_stats = graph.label_stats();
    let live = |label: &TransitionLabel| -> bool {
        match label {
            TransitionLabel::Epsilon => false,
            TransitionLabel::Symbol { label: None, .. } => false,
            TransitionLabel::Symbol { label: Some(l), .. } => {
                label_stats.has_edges(*l)
                    || (inference
                        && ontology
                            .subproperties_or_self(*l)
                            .iter()
                            .any(|p| label_stats.has_edges(*p)))
            }
            TransitionLabel::AnyForward | TransitionLabel::Any => graph.edge_count() > 0,
            TransitionLabel::TypeTo { class, .. } => {
                let has_instances = |c: NodeId| {
                    graph
                        .neighbors_iter(c, type_label, Direction::Incoming)
                        .next()
                        .is_some()
                };
                has_instances(*class)
                    || (inference
                        && ontology
                            .subclasses_or_self(*class)
                            .into_iter()
                            .any(has_instances))
            }
        }
    };
    let bounds = MinCostToAccept::compute_with(&nfa, &live);
    let defer_delta: Vec<u32> = nfa
        .states()
        .map(|s| {
            nfa.transitions_from(s)
                .filter(|t| t.cost > 0 && live(&t.label))
                .filter_map(|t| {
                    let h = bounds.get(t.to);
                    (h != MinCostToAccept::DEAD).then(|| t.cost.saturating_add(h))
                })
                .min()
                .unwrap_or(u32::MAX)
        })
        .collect();

    // Seed-cardinality estimate for the rank join's stream ordering.
    let estimated_seed_count = match &seeds {
        SeedSpec::Fixed(fixed) => fixed.len() as u64,
        SeedSpec::AllNodes { .. } => graph.node_count() as u64,
        SeedSpec::MatchingInitial => nfa
            .initial_labels()
            .iter()
            .map(|label| match label {
                TransitionLabel::Epsilon | TransitionLabel::Symbol { label: None, .. } => 0,
                TransitionLabel::Symbol {
                    label: Some(l),
                    inverse,
                    ..
                } => {
                    let entry = label_stats.entry(*l);
                    if *inverse {
                        entry.distinct_heads
                    } else {
                        entry.distinct_tails
                    }
                }
                TransitionLabel::AnyForward | TransitionLabel::Any => graph.node_count() as u64,
                TransitionLabel::TypeTo { class, .. } => graph
                    .neighbors_iter(*class, type_label, Direction::Incoming)
                    .count() as u64,
            })
            .sum(),
    };

    Ok(ConjunctPlan {
        mode: conjunct.mode,
        subject: conjunct.subject.clone(),
        object: conjunct.object.clone(),
        regex,
        reversed,
        nfa,
        seeds,
        final_constraint,
        require_equal_endpoints,
        subject_node,
        object_node,
        inference,
        phi,
        bounds,
        defer_delta,
        estimated_seed_count,
    })
}

/// Number of edges leaving `node` that the first transitions of `regex`
/// could match — the cost of the first expansion step when evaluation seeds
/// at `node`. Used to pick the cheaper direction for doubly-constant
/// conjuncts; the estimate deliberately uses the unaugmented skeleton (the
/// exact matches are where answers concentrate).
fn first_hop_fanout(regex: &RpqRegex, node: NodeId, graph: &GraphStore) -> u64 {
    let nfa = remove_epsilons(&build_nfa(regex, graph));
    nfa.initial_labels()
        .iter()
        .map(|label| match label {
            TransitionLabel::Epsilon | TransitionLabel::Symbol { label: None, .. } => 0,
            TransitionLabel::Symbol {
                label: Some(l),
                inverse,
                ..
            } => {
                let dir = if *inverse {
                    Direction::Incoming
                } else {
                    Direction::Outgoing
                };
                graph.neighbors_iter(node, *l, dir).count() as u64
            }
            TransitionLabel::AnyForward => graph.out_degree(node, None) as u64,
            TransitionLabel::Any => graph.degree(node) as u64,
            TransitionLabel::TypeTo { .. } => graph
                .neighbors_iter(node, graph.type_label(), Direction::Outgoing)
                .count() as u64,
        })
        .sum()
}

/// The node sets selected by an initial transition label, used both for
/// seeding `(?X, R, ?Y)` conjuncts and by tests.
pub(crate) fn seed_nodes_for_label(
    graph: &GraphStore,
    ontology: &Ontology,
    inference: bool,
    label: &TransitionLabel,
) -> omega_graph::NodeBitmap {
    use omega_graph::NodeBitmap;
    match label {
        TransitionLabel::Epsilon => NodeBitmap::new(),
        TransitionLabel::Symbol { label: None, .. } => NodeBitmap::new(),
        TransitionLabel::Symbol {
            label: Some(l),
            inverse,
            ..
        } => {
            let labels = if inference {
                ontology.subproperties_or_self(*l)
            } else {
                vec![*l]
            };
            let mut set = NodeBitmap::new();
            for l in labels {
                let part = if *inverse {
                    graph.heads(l)
                } else {
                    graph.tails(l)
                };
                set.union_with(&part);
            }
            // Under `sc` inference an inverse `type` traversal can also start
            // from superclasses whose only instances are inferred.
            if inference && *l == graph.type_label() && *inverse {
                let declared: Vec<_> = set.iter().collect();
                for class in declared {
                    for (sup, _) in ontology.superclasses(class) {
                        set.insert(sup);
                    }
                }
            }
            set
        }
        TransitionLabel::AnyForward => {
            let mut set = NodeBitmap::new();
            for (l, _) in graph.labels() {
                set.union_with(&graph.tails(l));
            }
            set
        }
        TransitionLabel::Any => graph.nodes_with_any_edge(),
        TransitionLabel::TypeTo { class, .. } => {
            let classes = if inference {
                ontology.subclasses_or_self(*class)
            } else {
                vec![*class]
            };
            let mut set = NodeBitmap::new();
            for c in classes {
                set.extend(graph.neighbors_iter(
                    c,
                    graph.type_label(),
                    omega_graph::Direction::Incoming,
                ));
            }
            set
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parser::parse_query;

    fn tiny_graph() -> (GraphStore, Ontology) {
        let mut g = GraphStore::new();
        g.add_triple("a", "knows", "b");
        g.add_triple("b", "knows", "c");
        g.add_triple("a", "type", "Person");
        g.add_triple("b", "type", "Student");
        let mut o = Ontology::new();
        let student = g.node_by_label("Student").unwrap();
        let person = g.node_by_label("Person").unwrap();
        o.add_subclass(student, person).unwrap();
        (g, o)
    }

    fn plan_for(query: &str) -> ConjunctPlan {
        let (g, o) = tiny_graph();
        let q = parse_query(query).unwrap();
        compile_conjunct(&q.conjuncts[0], &g, &o, &EvalOptions::default()).unwrap()
    }

    #[test]
    fn constant_subject_seeds_from_constant() {
        let plan = plan_for("(?X) <- (a, knows, ?X)");
        assert!(!plan.reversed);
        match &plan.seeds {
            SeedSpec::Fixed(seeds) => assert_eq!(seeds.len(), 1),
            other => panic!("unexpected seeds {other:?}"),
        }
        assert_eq!(plan.final_constraint, None);
        assert_eq!(plan.phi, 1);
    }

    #[test]
    fn constant_object_reverses_the_regex() {
        let plan = plan_for("(?X) <- (?X, knows, c)");
        assert!(plan.reversed);
        assert_eq!(plan.regex.to_string(), "knows-");
        match &plan.seeds {
            SeedSpec::Fixed(seeds) => {
                let (g, _) = tiny_graph();
                assert_eq!(seeds[0].0, g.node_by_label("c").unwrap());
            }
            other => panic!("unexpected seeds {other:?}"),
        }
    }

    #[test]
    fn both_constants_set_final_constraint() {
        let plan = plan_for("(?X) <- (a, knows, ?X), (a, knows, b)");
        // the first conjunct is used above; compile the second explicitly:
        let (g, o) = tiny_graph();
        let q = parse_query("(?X) <- (a, knows.knows, ?X), (a, knows, b)").unwrap();
        let plan2 = compile_conjunct(&q.conjuncts[1], &g, &o, &EvalOptions::default()).unwrap();
        assert_eq!(plan2.final_constraint, g.node_by_label("b"));
        assert!(plan.final_constraint.is_none());
    }

    #[test]
    fn var_var_conjunct_uses_matching_initial() {
        let plan = plan_for("(?X, ?Y) <- (?X, knows, ?Y)");
        assert_eq!(plan.seeds, SeedSpec::MatchingInitial);
        assert!(!plan.require_equal_endpoints);
    }

    #[test]
    fn nullable_regex_seeds_all_nodes_as_final() {
        let plan = plan_for("(?X, ?Y) <- (?X, knows*, ?Y)");
        assert_eq!(plan.seeds, SeedSpec::AllNodes { as_final: true });
    }

    #[test]
    fn approx_of_nullable_regex_keeps_zero_weight_finality() {
        let plan = plan_for("(?X, ?Y) <- APPROX (?X, knows*, ?Y)");
        assert_eq!(plan.seeds, SeedSpec::AllNodes { as_final: true });
        assert_eq!(plan.phi, 1);
    }

    #[test]
    fn same_variable_requires_equal_endpoints() {
        let plan = plan_for("(?X) <- (?X, knows.knows, ?X)");
        assert!(plan.require_equal_endpoints);
    }

    #[test]
    fn relax_class_constant_seeds_ancestors() {
        let plan = plan_for("(?X) <- RELAX (Student, type-, ?X)");
        match &plan.seeds {
            SeedSpec::Fixed(seeds) => {
                assert_eq!(seeds.len(), 2, "Student itself plus Person");
                assert_eq!(seeds[0].1, 0);
                assert_eq!(seeds[1].1, 1, "one β step up the hierarchy");
            }
            other => panic!("unexpected seeds {other:?}"),
        }
    }

    #[test]
    fn unknown_constant_is_an_error() {
        let (g, o) = tiny_graph();
        let q = parse_query("(?X) <- (Nowhere, knows, ?X)").unwrap();
        let err = compile_conjunct(&q.conjuncts[0], &g, &o, &EvalOptions::default()).unwrap_err();
        assert!(matches!(err, OmegaError::UnknownConstant(_)));
    }

    #[test]
    fn approx_automaton_is_epsilon_free_and_has_wildcards() {
        let plan = plan_for("(?X) <- APPROX (a, knows.knows, ?X)");
        assert!(!plan.nfa.has_epsilon_transitions());
        assert!(plan
            .nfa
            .transitions()
            .iter()
            .any(|t| matches!(t.label, TransitionLabel::Any)));
    }

    #[test]
    fn seed_nodes_for_label_selects_by_direction() {
        let (g, o) = tiny_graph();
        let knows = g.label_id("knows").unwrap();
        let fwd = seed_nodes_for_label(
            &g,
            &o,
            false,
            &TransitionLabel::symbol(Some(knows), false, "knows"),
        );
        assert_eq!(fwd.len(), 2); // a and b have outgoing `knows`
        let back = seed_nodes_for_label(
            &g,
            &o,
            false,
            &TransitionLabel::symbol(Some(knows), true, "knows"),
        );
        assert_eq!(back.len(), 2); // b and c have incoming `knows`
        let any = seed_nodes_for_label(&g, &o, false, &TransitionLabel::Any);
        assert_eq!(any.len(), g.nodes_with_any_edge().len());
    }

    #[test]
    fn seed_nodes_for_type_to_respects_inference() {
        let (g, o) = tiny_graph();
        let person = g.node_by_label("Person").unwrap();
        let strict = seed_nodes_for_label(
            &g,
            &o,
            false,
            &TransitionLabel::TypeTo {
                class: person,
                name: "Person".into(),
            },
        );
        assert_eq!(strict.len(), 1); // only `a` is directly typed Person
        let inferred = seed_nodes_for_label(
            &g,
            &o,
            true,
            &TransitionLabel::TypeTo {
                class: person,
                name: "Person".into(),
            },
        );
        assert_eq!(inferred.len(), 2); // `b` is a Student ⊑ Person
    }
}
