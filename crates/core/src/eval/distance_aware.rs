//! Distance-aware retrieval (Section 4.3, first optimisation).
//!
//! APPROX/RELAX evaluation normally explores transitions of any cost, even
//! when the user only ever asks for the first few answers and those are all
//! available at cost 0. Distance-aware retrieval sets a ceiling ψ (initially
//! 0): no tuple costing more than ψ is added to `D_R`. Only when more answers
//! are requested is ψ escalated by φ — the smallest edit/relaxation cost —
//! and evaluation restarted from scratch (the restart is the price the paper
//! accepts; it notes the scheme is not suitable when high-cost answers are
//! wanted).

use std::sync::Arc;

use omega_graph::GraphStore;
use omega_ontology::Ontology;

use crate::answer::ConjunctAnswer;
use crate::error::Result;
use crate::eval::conjunct::ConjunctEvaluator;
use crate::eval::options::EvalOptions;
use crate::eval::plan::ConjunctPlan;
use crate::eval::stats::EvalStats;
use crate::eval::visited::PairSet;
use crate::eval::AnswerStream;

/// Escalating-ψ driver around [`ConjunctEvaluator`].
pub struct DistanceAwareEvaluator<'a> {
    graph: &'a GraphStore,
    ontology: &'a Ontology,
    options: Arc<EvalOptions>,
    plan: Arc<ConjunctPlan>,
    current: ConjunctEvaluator<'a>,
    psi: u32,
    steps: u32,
    emitted: PairSet,
    finished_stats: EvalStats,
    exhausted: bool,
}

impl<'a> DistanceAwareEvaluator<'a> {
    /// Creates the driver with ψ = 0. Plan and options are shared (`Arc`),
    /// so restarts clone a pointer instead of the automaton.
    pub fn new(
        plan: Arc<ConjunctPlan>,
        graph: &'a GraphStore,
        ontology: &'a Ontology,
        options: Arc<EvalOptions>,
    ) -> DistanceAwareEvaluator<'a> {
        let current = ConjunctEvaluator::new(
            Arc::clone(&plan),
            graph,
            ontology,
            Arc::clone(&options),
            Some(0),
        );
        DistanceAwareEvaluator {
            graph,
            ontology,
            options,
            plan,
            current,
            psi: 0,
            steps: 0,
            emitted: PairSet::new(),
            finished_stats: EvalStats::default(),
            exhausted: false,
        }
    }

    /// The current ceiling ψ.
    pub fn psi(&self) -> u32 {
        self.psi
    }

    fn escalate(&mut self) -> bool {
        // Nothing was suppressed: the bounded run was already complete, so a
        // higher ceiling cannot produce new answers.
        if self.current.suppressed() == 0 || self.steps >= self.options.max_psi_steps {
            return false;
        }
        // The bounded run ended by graceful degradation, not completion: a
        // restart at a higher ceiling would re-walk the same saturated
        // frontier (and could emit answers beyond the proven prefix), so
        // the degraded stream is final.
        if self.current.stats().degraded {
            return false;
        }
        // The request's distance ceiling is the hard limit: once ψ has
        // reached it, everything beyond is out of scope by definition.
        if self.options.max_distance.is_some_and(|max| self.psi >= max) {
            return false;
        }
        self.finished_stats += self.current.stats();
        self.finished_stats.restarts += 1;
        self.psi += self.plan.phi;
        self.steps += 1;
        self.current = ConjunctEvaluator::new(
            Arc::clone(&self.plan),
            self.graph,
            self.ontology,
            Arc::clone(&self.options),
            Some(self.psi),
        );
        true
    }

    /// The next answer in non-decreasing distance order.
    pub fn get_next(&mut self) -> Result<Option<ConjunctAnswer>> {
        if self.exhausted {
            return Ok(None);
        }
        loop {
            match self.current.get_next()? {
                Some(answer) => {
                    // Answers below the previous ceiling re-appear after each
                    // restart; emit each combination only once.
                    if self.emitted.insert(answer.x, answer.y) {
                        return Ok(Some(answer));
                    }
                }
                None => {
                    if !self.escalate() {
                        self.exhausted = true;
                        return Ok(None);
                    }
                }
            }
        }
    }

    /// Runs to completion (or `limit` answers).
    pub fn collect(&mut self, limit: Option<usize>) -> Result<Vec<ConjunctAnswer>> {
        let mut out = Vec::new();
        while limit.is_none_or(|l| out.len() < l) {
            match self.get_next()? {
                Some(a) => out.push(a),
                None => break,
            }
        }
        Ok(out)
    }
}

impl AnswerStream for DistanceAwareEvaluator<'_> {
    fn next_answer(&mut self) -> Result<Option<ConjunctAnswer>> {
        self.get_next()
    }

    fn stats(&self) -> EvalStats {
        let mut stats = self.finished_stats;
        stats += self.current.stats();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::plan::compile_conjunct;
    use crate::query::parser::parse_query;

    fn setup() -> (GraphStore, Ontology) {
        let mut g = GraphStore::new();
        // a chain plus a typed branch so APPROX has work to do at distance > 0
        g.add_triple("a", "p", "b");
        g.add_triple("b", "p", "c");
        g.add_triple("c", "r", "d");
        g.add_triple("a", "q", "e");
        g.add_triple("e", "q", "f");
        (g, Ontology::new())
    }

    fn build<'a>(
        query: &str,
        graph: &'a GraphStore,
        ontology: &'a Ontology,
        options: &EvalOptions,
    ) -> DistanceAwareEvaluator<'a> {
        let q = parse_query(query).unwrap();
        let plan = compile_conjunct(&q.conjuncts[0], graph, ontology, options).unwrap();
        DistanceAwareEvaluator::new(Arc::new(plan), graph, ontology, Arc::new(options.clone()))
    }

    #[test]
    fn produces_same_answers_as_plain_evaluation() {
        let (g, o) = setup();
        let options = EvalOptions::default();
        for query in [
            "(?X) <- APPROX (a, p.p, ?X)",
            "(?X) <- APPROX (a, p.r, ?X)",
            "(?X) <- APPROX (a, q.q, ?X)",
            "(?X, ?Y) <- APPROX (?X, p.p, ?Y)",
        ] {
            let q = parse_query(query).unwrap();
            let mut plain =
                crate::eval::conjunct::evaluate_conjunct(&q.conjuncts[0], &g, &o, &options)
                    .unwrap();
            let mut plain_answers = plain.collect(None).unwrap();
            let mut aware = build(query, &g, &o, &options);
            let mut aware_answers = aware.collect(None).unwrap();
            let key = |v: &mut Vec<ConjunctAnswer>| {
                v.sort_by_key(|a| (a.x, a.y, a.distance));
                v.iter().map(|a| (a.x, a.y, a.distance)).collect::<Vec<_>>()
            };
            assert_eq!(
                key(&mut plain_answers),
                key(&mut aware_answers),
                "distance-aware answers differ for {query}"
            );
        }
    }

    #[test]
    fn answers_remain_sorted_by_distance() {
        let (g, o) = setup();
        let mut aware = build(
            "(?X) <- APPROX (a, p.p, ?X)",
            &g,
            &o,
            &EvalOptions::default(),
        );
        let answers = aware.collect(None).unwrap();
        let distances: Vec<u32> = answers.iter().map(|a| a.distance).collect();
        let mut sorted = distances.clone();
        sorted.sort_unstable();
        assert_eq!(distances, sorted);
    }

    #[test]
    fn stops_early_when_only_exact_answers_are_requested() {
        let (g, o) = setup();
        let mut aware = build(
            "(?X) <- APPROX (a, p.p, ?X)",
            &g,
            &o,
            &EvalOptions::default(),
        );
        let first = aware.get_next().unwrap().unwrap();
        assert_eq!(first.distance, 0);
        assert_eq!(
            aware.psi(),
            0,
            "ψ must not escalate while distance-0 answers suffice"
        );
    }

    #[test]
    fn escalation_counts_restarts() {
        let (g, o) = setup();
        let mut aware = build(
            "(?X) <- APPROX (a, p.r, ?X)",
            &g,
            &o,
            &EvalOptions::default(),
        );
        let _ = aware.collect(None).unwrap();
        assert!(aware.stats().restarts > 0);
        assert!(aware.psi() > 0);
    }

    #[test]
    fn max_distance_stops_escalation() {
        let (g, o) = setup();
        // Without a ceiling this query escalates (see escalation_counts_restarts);
        // with max_distance = 0 it must stay at ψ = 0 and only return exact answers.
        let options = EvalOptions::default().with_max_distance(Some(0));
        let mut aware = build("(?X) <- APPROX (a, p.r, ?X)", &g, &o, &options);
        let answers = aware.collect(None).unwrap();
        assert!(answers.iter().all(|a| a.distance == 0));
        assert_eq!(aware.psi(), 0);
        assert_eq!(aware.stats().restarts, 0);
    }

    #[test]
    fn cancellation_stops_evaluation_across_restarts() {
        use crate::eval::cancel::CancelToken;
        use crate::OmegaError;

        let (g, o) = setup();
        let token = CancelToken::new();
        let options = EvalOptions::default().with_cancel_token(token.clone());
        let mut aware = build("(?X) <- APPROX (a, p.r, ?X)", &g, &o, &options);
        assert!(
            aware.get_next().unwrap().is_some(),
            "produces before cancel"
        );
        token.cancel();
        // The token is polled every 64 tuples, so up to a check interval of
        // answers may still arrive; this query escalates (see
        // `escalation_counts_restarts`) and the restarted inner evaluator
        // checks on its first iteration, so the error must surface before
        // the stream can claim exhaustion.
        let outcome = loop {
            match aware.get_next() {
                Ok(Some(_)) => continue,
                other => break other,
            }
        };
        assert!(matches!(outcome, Err(OmegaError::Cancelled)));
    }

    #[test]
    fn exact_conjuncts_never_escalate() {
        let (g, o) = setup();
        let mut aware = build("(?X) <- (a, p.p, ?X)", &g, &o, &EvalOptions::default());
        let answers = aware.collect(None).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(aware.psi(), 0);
        assert_eq!(aware.stats().restarts, 0);
    }
}
