//! Evaluation options: edit/relaxation costs, optimisation toggles and
//! resource limits.

use std::time::Instant;

use omega_automata::{ApproxConfig, RelaxConfig};

/// Options controlling query evaluation.
///
/// The defaults correspond to the configuration used throughout the paper's
/// performance study: unit edit and relaxation costs, final-tuple
/// prioritisation on, initial nodes fed in batches of 100, and the two
/// Section 4.3 optimisations (distance-aware retrieval, alternation
/// decomposition) off so that they can be measured as ablations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalOptions {
    /// Edit-operation costs for APPROX conjuncts.
    pub approx: ApproxConfig,
    /// Relaxation costs for RELAX conjuncts.
    pub relax: RelaxConfig,
    /// Whether RELAX conjuncts match under RDFS inference (subproperty /
    /// subclass closure) in addition to the relaxation transitions.
    pub inference: bool,
    /// Number of initial nodes released into `D_R` per batch for
    /// `(?X, R, ?Y)` conjuncts (the paper's coroutine batching, default 100).
    pub batch_size: usize,
    /// Whether final tuples are removed before non-final tuples at the same
    /// distance (the paper found this both faster and necessary for some
    /// queries to complete).
    pub prioritize_final: bool,
    /// Distance-aware retrieval (Section 4.3): evaluate with a cost ceiling
    /// ψ that escalates by φ only when more answers are required.
    pub distance_aware: bool,
    /// Replace a top-level alternation by a set of sub-automata scheduled
    /// adaptively (Section 4.3). Applies to APPROX conjuncts.
    pub disjunction_decomposition: bool,
    /// Maximum number of live tuples (`D_R` plus the visited set) before the
    /// evaluator aborts with `ResourceExhausted`. `None` means unlimited.
    /// This models the paper's out-of-memory failures deterministically.
    pub max_tuples: Option<usize>,
    /// Upper bound on answer distance explored by the escalating drivers
    /// (distance-aware and disjunction evaluation); plain evaluation does not
    /// need it. Expressed in multiples of φ.
    pub max_psi_steps: u32,
    /// Hard ceiling on answer distance: tuples beyond it are suppressed and
    /// the escalating drivers stop at it. Normally set per request through
    /// [`crate::service::ExecOptions::with_max_distance`].
    pub max_distance: Option<u32>,
    /// Wall-clock deadline enforced inside the evaluator loops; evaluation
    /// past it fails with [`crate::OmegaError::DeadlineExceeded`]. Normally
    /// set per request through [`crate::service::ExecOptions`].
    pub deadline: Option<Instant>,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            approx: ApproxConfig::default(),
            relax: RelaxConfig::default(),
            inference: true,
            batch_size: 100,
            prioritize_final: true,
            distance_aware: false,
            disjunction_decomposition: false,
            max_tuples: None,
            max_psi_steps: 16,
            max_distance: None,
            deadline: None,
        }
    }
}

impl EvalOptions {
    /// Enables distance-aware retrieval.
    pub fn with_distance_aware(mut self, on: bool) -> Self {
        self.distance_aware = on;
        self
    }

    /// Enables alternation→disjunction decomposition.
    pub fn with_disjunction_decomposition(mut self, on: bool) -> Self {
        self.disjunction_decomposition = on;
        self
    }

    /// Sets the live-tuple budget.
    pub fn with_max_tuples(mut self, max: Option<usize>) -> Self {
        self.max_tuples = max;
        self
    }

    /// Sets the initial-node batch size.
    pub fn with_batch_size(mut self, batch: usize) -> Self {
        self.batch_size = batch.max(1);
        self
    }

    /// Disables the final-tuple prioritisation (for ablation benchmarks).
    pub fn without_final_prioritization(mut self) -> Self {
        self.prioritize_final = false;
        self
    }

    /// Sets the hard answer-distance ceiling.
    pub fn with_max_distance(mut self, max: Option<u32>) -> Self {
        self.max_distance = max;
        self
    }

    /// Sets the wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Option<Instant>) -> Self {
        self.deadline = deadline;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let o = EvalOptions::default();
        assert_eq!(o.approx, ApproxConfig::default());
        assert_eq!(o.approx.insertion, 1);
        assert_eq!(o.relax.beta, 1);
        assert_eq!(o.batch_size, 100);
        assert!(o.prioritize_final);
        assert!(!o.distance_aware);
        assert!(!o.disjunction_decomposition);
        assert_eq!(o.max_tuples, None);
    }

    #[test]
    fn builder_methods() {
        let o = EvalOptions::default()
            .with_distance_aware(true)
            .with_disjunction_decomposition(true)
            .with_max_tuples(Some(10))
            .with_batch_size(0)
            .without_final_prioritization();
        assert!(o.distance_aware);
        assert!(o.disjunction_decomposition);
        assert_eq!(o.max_tuples, Some(10));
        assert_eq!(o.batch_size, 1, "batch size is clamped to at least 1");
        assert!(!o.prioritize_final);
    }
}
