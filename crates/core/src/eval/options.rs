//! Evaluation options: edit/relaxation costs, optimisation toggles and
//! resource limits.

use std::sync::OnceLock;
use std::time::Instant;

use omega_automata::{ApproxConfig, RelaxConfig};

use crate::eval::cancel::CancelToken;
use crate::govern::GovernorHandle;

/// What the engine does when a resource budget trips — at admission
/// (governor rejects the execution) or mid-query (per-query `max_tuples`
/// tripped, or the shared tuple pool could not satisfy a reservation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Surface the typed error ([`crate::OmegaError::Overloaded`] at
    /// admission, [`crate::OmegaError::ResourceExhausted`] mid-query) and
    /// discard in-flight work. The default, and the only pre-governor
    /// behaviour.
    #[default]
    Fail,
    /// Graceful degradation: a mid-query trip finishes the stream cleanly
    /// with the answers already proven complete — every emitted rank is
    /// strictly below the evaluation frontier, so the yielded set is
    /// bit-identical to a prefix of the uncapped run — and records
    /// `degraded: true` plus a [`crate::eval::TruncationReason`] in the
    /// stats. Admission rejections still fail (there is nothing to
    /// degrade before any work has run).
    Degrade,
    /// Load shedding: an admission rejection backs off for the governor's
    /// `retry_after` hint, shrinks the request's budgets (live tuples, ψ
    /// steps), and retries admission once; mid-query trips degrade as under
    /// [`OverloadPolicy::Degrade`]. Each shed retry is counted in
    /// [`crate::EvalStats::sheds`].
    Shed,
}

/// Default bound of the per-conjunct answer channels in parallel evaluation.
pub const DEFAULT_PARALLEL_CHANNEL_CAPACITY: usize = 256;

/// Whether `parallel_conjuncts` defaults to on, read once from the
/// `OMEGA_PARALLEL_CONJUNCTS` environment variable (`1` / `true` / `on`).
/// This is how CI forces the whole test suite through the parallel path
/// without touching every call site.
fn parallel_conjuncts_default() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| {
        std::env::var("OMEGA_PARALLEL_CONJUNCTS")
            .map(|v| matches!(v.as_str(), "1" | "true" | "on"))
            .unwrap_or(false)
    })
}

/// Whether `cost_guided` defaults to on. `OMEGA_COST_GUIDED=0` (or `false` /
/// `off`) disables it suite-wide — the CI matrix runs the workspace tests in
/// both configurations, and perf comparisons use it to measure the ablation.
fn cost_guided_default() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| {
        std::env::var("OMEGA_COST_GUIDED")
            .map(|v| !matches!(v.as_str(), "0" | "false" | "off"))
            .unwrap_or(true)
    })
}

/// Options controlling query evaluation.
///
/// The defaults correspond to the configuration used throughout the paper's
/// performance study: unit edit and relaxation costs, final-tuple
/// prioritisation on, initial nodes fed in batches of 100, and the two
/// Section 4.3 optimisations (distance-aware retrieval, alternation
/// decomposition) off so that they can be measured as ablations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalOptions {
    /// Edit-operation costs for APPROX conjuncts.
    pub approx: ApproxConfig,
    /// Relaxation costs for RELAX conjuncts.
    pub relax: RelaxConfig,
    /// Whether RELAX conjuncts match under RDFS inference (subproperty /
    /// subclass closure) in addition to the relaxation transitions.
    pub inference: bool,
    /// Number of initial nodes released into `D_R` per batch for
    /// `(?X, R, ?Y)` conjuncts (the paper's coroutine batching, default 100).
    pub batch_size: usize,
    /// Whether final tuples are removed before non-final tuples at the same
    /// distance (the paper found this both faster and necessary for some
    /// queries to complete).
    pub prioritize_final: bool,
    /// Distance-aware retrieval (Section 4.3): evaluate with a cost ceiling
    /// ψ that escalates by φ only when more answers are required.
    pub distance_aware: bool,
    /// Replace a top-level alternation by a set of sub-automata scheduled
    /// adaptively (Section 4.3). Applies to APPROX conjuncts.
    pub disjunction_decomposition: bool,
    /// Maximum number of live tuples (`D_R` plus the visited set) before the
    /// evaluator aborts with `ResourceExhausted`. `None` means unlimited.
    /// This models the paper's out-of-memory failures deterministically.
    pub max_tuples: Option<usize>,
    /// Upper bound on answer distance explored by the escalating drivers
    /// (distance-aware and disjunction evaluation); plain evaluation does not
    /// need it. Expressed in multiples of φ.
    pub max_psi_steps: u32,
    /// Hard ceiling on answer distance: tuples beyond it are suppressed and
    /// the escalating drivers stop at it. Normally set per request through
    /// [`crate::service::ExecOptions::with_max_distance`].
    pub max_distance: Option<u32>,
    /// Wall-clock deadline enforced inside the evaluator loops; evaluation
    /// past it fails with [`crate::OmegaError::DeadlineExceeded`]. Normally
    /// set per request through [`crate::service::ExecOptions`].
    pub deadline: Option<Instant>,
    /// Evaluate the conjuncts of a multi-conjunct query on parallel worker
    /// threads, feeding the ranked join through bounded channels. Answer
    /// sequences are bit-identical to sequential evaluation; only wall-clock
    /// behaviour changes. Defaults to off, or to the value of the
    /// `OMEGA_PARALLEL_CONJUNCTS` environment variable when set.
    pub parallel_conjuncts: bool,
    /// Maximum number of conjunct worker threads per execution when
    /// `parallel_conjuncts` is on; `0` means one worker per conjunct.
    /// Conjuncts beyond the budget are evaluated inline on the caller's
    /// thread, exactly as in sequential mode.
    pub parallel_workers: usize,
    /// Capacity of each worker's bounded answer channel. Small capacities
    /// keep workers closely paced to the join's consumption (and are used by
    /// the cancellation tests); larger ones decouple producers from the
    /// consumer.
    pub parallel_channel_capacity: usize,
    /// Shared cancellation token for this execution. Installed automatically
    /// per execution by the service layer; evaluator loops poll it at the
    /// deadline-check cadence and bail out with
    /// [`crate::OmegaError::Cancelled`] once triggered.
    pub cancel: Option<CancelToken>,
    /// Cost-guided evaluation: order the tuple queue by `f = g + h` (the
    /// accumulated distance plus the compiled plan's admissible per-state
    /// accept lower bound), prune tuples that provably cannot beat the
    /// distance ceiling, skip expansions into dead automaton states, defer
    /// positive-cost expansions until the distance cursor needs them, and
    /// let compilation / the rank join use the frozen label statistics for
    /// seed-side planning. Answers keep their non-decreasing distance
    /// order and their per-distance sets exactly; only work (and tie order
    /// within one distance) changes. Defaults to on; `OMEGA_COST_GUIDED=0`
    /// turns it off suite-wide.
    pub cost_guided: bool,
    /// Reaction to tripped resource budgets (see [`OverloadPolicy`]).
    pub on_overload: OverloadPolicy,
    /// Handle to the database-wide [`crate::ResourceGovernor`], installed by
    /// the service layer. Evaluators draw their live-tuple occupancy from
    /// the governor's shared pool through it; `None` (the default for
    /// hand-built evaluators) accounts nothing globally.
    pub govern: Option<GovernorHandle>,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            approx: ApproxConfig::default(),
            relax: RelaxConfig::default(),
            inference: true,
            batch_size: 100,
            prioritize_final: true,
            distance_aware: false,
            disjunction_decomposition: false,
            max_tuples: None,
            max_psi_steps: 16,
            max_distance: None,
            deadline: None,
            parallel_conjuncts: parallel_conjuncts_default(),
            parallel_workers: 0,
            parallel_channel_capacity: DEFAULT_PARALLEL_CHANNEL_CAPACITY,
            cancel: None,
            cost_guided: cost_guided_default(),
            on_overload: OverloadPolicy::default(),
            govern: None,
        }
    }
}

impl EvalOptions {
    /// Enables distance-aware retrieval.
    pub fn with_distance_aware(mut self, on: bool) -> Self {
        self.distance_aware = on;
        self
    }

    /// Enables alternation→disjunction decomposition.
    pub fn with_disjunction_decomposition(mut self, on: bool) -> Self {
        self.disjunction_decomposition = on;
        self
    }

    /// Sets the live-tuple budget.
    pub fn with_max_tuples(mut self, max: Option<usize>) -> Self {
        self.max_tuples = max;
        self
    }

    /// Sets the initial-node batch size.
    pub fn with_batch_size(mut self, batch: usize) -> Self {
        self.batch_size = batch.max(1);
        self
    }

    /// Disables the final-tuple prioritisation (for ablation benchmarks).
    pub fn without_final_prioritization(mut self) -> Self {
        self.prioritize_final = false;
        self
    }

    /// Sets the hard answer-distance ceiling.
    pub fn with_max_distance(mut self, max: Option<u32>) -> Self {
        self.max_distance = max;
        self
    }

    /// Sets the wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Option<Instant>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Enables or disables parallel conjunct evaluation.
    pub fn with_parallel_conjuncts(mut self, on: bool) -> Self {
        self.parallel_conjuncts = on;
        self
    }

    /// Caps the number of conjunct worker threads (`0` = one per conjunct).
    pub fn with_parallel_workers(mut self, workers: usize) -> Self {
        self.parallel_workers = workers;
        self
    }

    /// Sets the per-worker answer channel capacity (clamped to at least 1).
    pub fn with_parallel_channel_capacity(mut self, capacity: usize) -> Self {
        self.parallel_channel_capacity = capacity.max(1);
        self
    }

    /// Installs the execution's shared cancellation token.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Enables or disables cost-guided evaluation (A* ordering, bound and
    /// dead-state pruning, deferred expansion, stats-driven planning).
    pub fn with_cost_guided(mut self, on: bool) -> Self {
        self.cost_guided = on;
        self
    }

    /// Selects the overload reaction policy.
    pub fn with_on_overload(mut self, policy: OverloadPolicy) -> Self {
        self.on_overload = policy;
        self
    }

    /// Installs the database-wide governor handle.
    pub fn with_governor(mut self, handle: GovernorHandle) -> Self {
        self.govern = Some(handle);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let o = EvalOptions::default();
        assert_eq!(o.approx, ApproxConfig::default());
        assert_eq!(o.approx.insertion, 1);
        assert_eq!(o.relax.beta, 1);
        assert_eq!(o.batch_size, 100);
        assert!(o.prioritize_final);
        assert!(!o.distance_aware);
        assert!(!o.disjunction_decomposition);
        assert_eq!(o.max_tuples, None);
        assert_eq!(o.parallel_workers, 0);
        assert_eq!(
            o.parallel_channel_capacity,
            DEFAULT_PARALLEL_CHANNEL_CAPACITY
        );
        assert!(o.cancel.is_none());
        assert_eq!(o.on_overload, OverloadPolicy::Fail);
        assert!(o.govern.is_none());
    }

    #[test]
    fn builder_methods() {
        let token = CancelToken::new();
        let o = EvalOptions::default()
            .with_distance_aware(true)
            .with_disjunction_decomposition(true)
            .with_max_tuples(Some(10))
            .with_batch_size(0)
            .without_final_prioritization()
            .with_parallel_conjuncts(true)
            .with_parallel_workers(2)
            .with_parallel_channel_capacity(0)
            .with_cancel_token(token.clone());
        assert!(o.distance_aware);
        assert!(o.disjunction_decomposition);
        assert_eq!(o.max_tuples, Some(10));
        assert_eq!(o.batch_size, 1, "batch size is clamped to at least 1");
        assert!(!o.prioritize_final);
        assert!(o.parallel_conjuncts);
        assert_eq!(o.parallel_workers, 2);
        assert_eq!(o.parallel_channel_capacity, 1, "capacity clamps to 1");
        assert_eq!(o.cancel, Some(token));
    }
}
