//! Visited- and emitted-set tracking for the ranked evaluator.
//!
//! `GetNext` tests membership of `(v, n, s)` triples (start node, graph
//! node, automaton state) on every expansion, and of `(x, y)` answer pairs
//! on every emission. The original implementation used
//! `HashSet<(NodeId, NodeId, StateId)>` with SipHash — three words hashed
//! per probe, on the hottest path in the engine.
//!
//! Here the product coordinate `(s, n)` is packed into one machine word
//! (`state * node_count + node`) and keyed per start node:
//!
//! * **dense mode** — when evaluation starts from a small fixed seed set
//!   (constant-subject conjuncts, the common case), each start gets a rank
//!   and membership is one bit in a flat bitmap of
//!   `ranks * states * nodes` bits: a shift, a mask and a load.
//! * **sparse mode** — when every graph node can be a start
//!   (`(?X, R, ?Y)` conjuncts), the bitmap would be quadratic in the graph,
//!   so the packed `start * stride + product` word goes into an open
//!   Fx-hashed set instead: still one u64 hashed per probe.
//!
//! [`PairSet`] gives answer pairs the same packed-word treatment.

use omega_graph::{FxHashSet, NodeId};

use crate::eval::plan::SeedSpec;

/// Ceiling on the dense bitmap size (in bits) before falling back to the
/// hashed representation: 1 << 24 bits = 2 MiB.
const DENSE_LIMIT_BITS: u64 = 1 << 24;

/// Membership set over `(start, state, node)` triples.
#[derive(Debug)]
pub struct VisitedSet {
    /// `states * nodes`: the size of one start's product space.
    stride: u64,
    node_count: u64,
    len: usize,
    repr: Repr,
}

#[derive(Debug)]
enum Repr {
    Dense {
        /// Maps a start node id to its rank in the bitmap.
        ranks: Vec<(NodeId, u32)>,
        words: Vec<u64>,
    },
    Sparse(FxHashSet<u64>),
}

impl VisitedSet {
    /// Creates the set for a product space of `node_count * state_count`,
    /// choosing the dense representation when `seeds` is a small fixed list.
    pub fn new(node_count: usize, state_count: usize, seeds: &SeedSpec) -> VisitedSet {
        let stride = node_count as u64 * state_count as u64;
        let repr = match seeds {
            SeedSpec::Fixed(seeds)
                if !seeds.is_empty() && seeds.len() as u64 * stride <= DENSE_LIMIT_BITS =>
            {
                let ranks: Vec<(NodeId, u32)> = seeds
                    .iter()
                    .enumerate()
                    .map(|(rank, &(node, _))| (node, rank as u32))
                    .collect();
                let bits = ranks.len() as u64 * stride;
                Repr::Dense {
                    ranks,
                    words: vec![0; bits.div_ceil(64) as usize],
                }
            }
            _ => Repr::Sparse(FxHashSet::default()),
        };
        VisitedSet {
            stride,
            node_count: node_count as u64,
            len: 0,
            repr,
        }
    }

    #[inline]
    fn product(&self, node: NodeId, state: u32) -> u64 {
        state as u64 * self.node_count + node.0 as u64
    }

    /// Number of tracked members (kept for the evaluator's resource budget).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no member was inserted yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts, returning `true` if the triple was new.
    #[inline]
    pub fn insert(&mut self, start: NodeId, node: NodeId, state: u32) -> bool {
        let product = self.product(node, state);
        let new = match &mut self.repr {
            Repr::Dense { ranks, words } => {
                let rank = rank_of(ranks, start);
                let bit = rank as u64 * self.stride + product;
                let (w, b) = ((bit / 64) as usize, bit % 64);
                let mask = 1u64 << b;
                let new = words[w] & mask == 0;
                words[w] |= mask;
                new
            }
            Repr::Sparse(set) => set.insert(start.0 as u64 * self.stride + product),
        };
        self.len += new as usize;
        new
    }

    /// Whether the triple is present.
    #[inline]
    pub fn contains(&self, start: NodeId, node: NodeId, state: u32) -> bool {
        let product = self.product(node, state);
        match &self.repr {
            Repr::Dense { ranks, words } => {
                let rank = rank_of(ranks, start);
                let bit = rank as u64 * self.stride + product;
                words[(bit / 64) as usize] & (1u64 << (bit % 64)) != 0
            }
            Repr::Sparse(set) => set.contains(&(start.0 as u64 * self.stride + product)),
        }
    }
}

/// Rank lookup in the (tiny) fixed seed list; linear scan beats hashing at
/// these sizes and the result is on the L1-resident ranks slice.
#[inline]
fn rank_of(ranks: &[(NodeId, u32)], start: NodeId) -> u32 {
    // Callers only ever look up starts taken from the seed list the ranks
    // were built over; the expect documents that invariant on a hot path.
    #[allow(clippy::expect_used)]
    ranks
        .iter()
        .find(|&&(node, _)| node == start)
        .map(|&(_, rank)| rank)
        .expect("start node must come from the fixed seed list")
}

/// Membership set over `(x, y)` node pairs, packed into one u64.
#[derive(Debug, Default)]
pub struct PairSet {
    set: FxHashSet<u64>,
}

impl PairSet {
    /// Creates an empty set.
    pub fn new() -> PairSet {
        PairSet::default()
    }

    #[inline]
    fn key(x: NodeId, y: NodeId) -> u64 {
        (x.0 as u64) << 32 | y.0 as u64
    }

    /// Inserts, returning `true` if the pair was new.
    #[inline]
    pub fn insert(&mut self, x: NodeId, y: NodeId) -> bool {
        self.set.insert(Self::key(x, y))
    }

    /// Whether the pair is present.
    #[inline]
    pub fn contains(&self, x: NodeId, y: NodeId) -> bool {
        self.set.contains(&Self::key(x, y))
    }

    /// Number of stored pairs.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed(seeds: &[u32]) -> SeedSpec {
        SeedSpec::Fixed(seeds.iter().map(|&n| (NodeId(n), 0)).collect())
    }

    #[test]
    fn dense_mode_tracks_membership() {
        let mut v = VisitedSet::new(10, 3, &fixed(&[2, 5]));
        assert!(matches!(v.repr, Repr::Dense { .. }));
        assert!(v.is_empty());
        assert!(v.insert(NodeId(2), NodeId(7), 1));
        assert!(!v.insert(NodeId(2), NodeId(7), 1));
        assert!(v.contains(NodeId(2), NodeId(7), 1));
        assert!(!v.contains(NodeId(5), NodeId(7), 1));
        assert!(!v.contains(NodeId(2), NodeId(7), 2));
        assert!(!v.contains(NodeId(2), NodeId(8), 1));
        assert!(v.insert(NodeId(5), NodeId(9), 2));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn sparse_mode_tracks_membership() {
        let mut v = VisitedSet::new(10, 3, &SeedSpec::MatchingInitial);
        assert!(matches!(v.repr, Repr::Sparse(_)));
        assert!(v.insert(NodeId(0), NodeId(9), 2));
        assert!(!v.insert(NodeId(0), NodeId(9), 2));
        assert!(v.contains(NodeId(0), NodeId(9), 2));
        assert!(!v.contains(NodeId(1), NodeId(9), 2));
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn oversized_fixed_seed_lists_fall_back_to_sparse() {
        let many: Vec<u32> = (0..1000).collect();
        // 1000 seeds * (1 << 20 nodes * 8 states) blows the dense limit.
        let v = VisitedSet::new(1 << 20, 8, &fixed(&many));
        assert!(matches!(v.repr, Repr::Sparse(_)));
    }

    #[test]
    fn dense_and_sparse_agree() {
        let seeds = fixed(&[0, 3]);
        let mut dense = VisitedSet::new(8, 4, &seeds);
        let mut sparse = VisitedSet::new(8, 4, &SeedSpec::MatchingInitial);
        let triples = [(0u32, 1u32, 0u32), (3, 7, 3), (0, 1, 0), (3, 1, 2)];
        for &(s, n, st) in &triples {
            assert_eq!(
                dense.insert(NodeId(s), NodeId(n), st),
                sparse.insert(NodeId(s), NodeId(n), st)
            );
        }
        assert_eq!(dense.len(), sparse.len());
    }

    #[test]
    fn pair_set_packs_distinct_pairs() {
        let mut p = PairSet::new();
        assert!(p.insert(NodeId(1), NodeId(2)));
        assert!(!p.insert(NodeId(1), NodeId(2)));
        assert!(p.insert(NodeId(2), NodeId(1)), "order matters");
        assert!(p.contains(NodeId(1), NodeId(2)));
        assert!(!p.contains(NodeId(3), NodeId(4)));
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }
}
