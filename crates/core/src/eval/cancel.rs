//! Cooperative cancellation for evaluator loops and conjunct workers.
//!
//! One [`CancelToken`] is created per query execution and shared — through
//! [`crate::eval::EvalOptions`] — by every evaluator (sequential or on a
//! worker thread) taking part in that execution. The evaluators poll it at
//! the same cadence as the wall-clock deadline check; the answer stream
//! cancels it when the execution finishes, fails or is dropped, which is
//! what lets parallel conjunct workers blocked deep inside a traversal (or
//! on a full channel) exit promptly instead of running to completion for a
//! consumer that no longer exists.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared, clonable cancellation flag.
///
/// Cloning shares the flag (an `Arc` bump); equality is identity, so two
/// tokens compare equal exactly when cancelling one cancels the other.
///
/// A token can be derived from a parent with [`CancelToken::child`]: the
/// child observes the parent's cancellation but cancelling the child leaves
/// the parent untouched. The service layer uses this to respect a
/// caller-installed base token as an external kill switch while still
/// cancelling each execution's own token when its stream finishes — a base
/// token must never be poisoned by the first query that completes.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
    parent: Option<Arc<CancelToken>>,
}

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Creates a token that is also cancelled whenever `self` is, while its
    /// own [`CancelToken::cancel`] does not propagate back to `self`.
    pub fn child(&self) -> CancelToken {
        CancelToken {
            cancelled: Arc::new(AtomicBool::new(false)),
            parent: Some(Arc::new(self.clone())),
        }
    }

    /// Requests cancellation (of this token and its children, not of any
    /// parent). Idempotent; never blocks.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested on this token or an ancestor.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
            || self.parent.as_ref().is_some_and(|p| p.is_cancelled())
    }
}

impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.cancelled, &other.cancelled)
    }
}

impl Eq for CancelToken {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_is_shared_between_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        token.cancel(); // idempotent
        assert!(token.is_cancelled());
    }

    #[test]
    fn equality_is_identity() {
        let token = CancelToken::new();
        assert_eq!(token, token.clone());
        assert_ne!(token, CancelToken::new());
    }

    #[test]
    fn child_observes_parent_but_not_vice_versa() {
        let parent = CancelToken::new();
        let child = parent.child();
        assert!(!child.is_cancelled());
        // Cancelling the child leaves the parent usable.
        child.cancel();
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled());
        // A fresh child is independent of the first…
        let second = parent.child();
        assert!(!second.is_cancelled());
        // …but cancelling the parent reaches every child.
        parent.cancel();
        assert!(second.is_cancelled());
    }
}
