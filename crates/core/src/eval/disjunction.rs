//! Replacing alternation by disjunction (Section 4.3, second optimisation).
//!
//! A conjunct whose regular expression is a top-level alternation
//! `R1 | R2 | …` is evaluated as a set of sub-conjuncts, one per branch.
//! All branches are evaluated at cost ceiling 0 first (in syntactic order);
//! the number of answers each branch produced decides the order in which the
//! branches are evaluated at the next ceiling: the branch with the *fewest*
//! answers so far goes first, because it is the one most likely to need
//! flexible matching to contribute anything — and if the cheaper branches
//! already satisfied the user's `LIMIT`, the expensive ones are never touched
//! at the higher cost at all.

use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

use omega_graph::{GraphStore, NodeId};
use omega_ontology::Ontology;

use crate::answer::ConjunctAnswer;
use crate::error::Result;
use crate::eval::conjunct::ConjunctEvaluator;
use crate::eval::options::EvalOptions;
use crate::eval::plan::{compile_conjunct, ConjunctPlan};
use crate::eval::stats::EvalStats;
use crate::eval::AnswerStream;
use crate::query::ast::Conjunct;
use omega_automata::decompose_alternation;

/// One branch of the decomposed alternation.
struct Branch {
    plan: Arc<ConjunctPlan>,
    /// Answers contributed during the previous ψ level (the paper's
    /// `n_{kφ,i}`), used to order branches at the next level.
    answers_last_level: usize,
    /// Whether the previous run at this branch suppressed any tuple (i.e.
    /// whether a higher ceiling could still yield more).
    may_have_more: bool,
}

/// Adaptive per-branch evaluation of a top-level alternation.
///
/// Branches are evaluated lazily: within a ψ-level the next branch is only
/// touched once the answers already produced have been consumed, so a caller
/// that stops after its top-k never pays for the expensive branches at the
/// higher cost levels — which is precisely where the paper's speed-up on
/// YAGO query 9 comes from.
pub struct DisjunctionEvaluator<'a> {
    graph: &'a GraphStore,
    ontology: &'a Ontology,
    options: Arc<EvalOptions>,
    branches: Vec<Branch>,
    phi: u32,
    psi: u32,
    steps: u32,
    started: bool,
    /// Branch indices still to be evaluated at the current ψ-level, in
    /// adaptive order (front first).
    level_queue: VecDeque<usize>,
    /// The branch currently being drained (index and its live evaluator).
    current: Option<(usize, ConjunctEvaluator<'a>)>,
    emitted: HashSet<(NodeId, NodeId)>,
    stats: EvalStats,
    exhausted: bool,
}

impl<'a> DisjunctionEvaluator<'a> {
    /// Attempts to build the decomposed evaluator for `conjunct`; returns
    /// `Ok(None)` when the conjunct's regular expression is not a top-level
    /// alternation (the optimisation does not apply).
    pub fn try_new(
        conjunct: &Conjunct,
        graph: &'a GraphStore,
        ontology: &'a Ontology,
        options: Arc<EvalOptions>,
    ) -> Result<Option<DisjunctionEvaluator<'a>>> {
        let Some(plans) = compile_branches(conjunct, graph, ontology, &options)? else {
            return Ok(None);
        };
        Ok(Some(DisjunctionEvaluator::from_plans(
            plans, graph, ontology, options,
        )))
    }

    /// Builds the evaluator from already compiled branch plans (the prepared
    /// query path: branches are compiled once at prepare time and reused).
    pub fn from_plans(
        plans: Vec<Arc<ConjunctPlan>>,
        graph: &'a GraphStore,
        ontology: &'a Ontology,
        options: Arc<EvalOptions>,
    ) -> DisjunctionEvaluator<'a> {
        debug_assert!(!plans.is_empty());
        let phi = plans.iter().map(|p| p.phi).min().unwrap_or(1);
        let branches = plans
            .into_iter()
            .map(|plan| Branch {
                plan,
                answers_last_level: 0,
                may_have_more: true,
            })
            .collect();
        DisjunctionEvaluator {
            graph,
            ontology,
            options,
            branches,
            phi: phi.max(1),
            psi: 0,
            steps: 0,
            started: false,
            level_queue: VecDeque::new(),
            current: None,
            emitted: HashSet::new(),
            stats: EvalStats::default(),
            exhausted: false,
        }
    }

    /// Number of branches the alternation was split into.
    pub fn branch_count(&self) -> usize {
        self.branches.len()
    }

    /// The current cost ceiling.
    pub fn psi(&self) -> u32 {
        self.psi
    }

    /// Advances to the next ψ-level, placing its branches (in adaptive
    /// order) on the level queue. Returns `false` when no further level can
    /// produce answers.
    fn advance_level(&mut self) -> bool {
        if self.started {
            if self.steps >= self.options.max_psi_steps
                || self.branches.iter().all(|b| !b.may_have_more)
                || self.options.max_distance.is_some_and(|max| self.psi >= max)
            {
                return false;
            }
            self.psi += self.phi;
            self.steps += 1;
            self.stats.restarts += 1;
        }
        self.started = true;
        // Adaptive order: fewest answers at the previous level first; the
        // first (distance-0) level keeps the syntactic order.
        let mut order: Vec<usize> = (0..self.branches.len()).collect();
        if self.psi > 0 {
            order.sort_by_key(|&i| self.branches[i].answers_last_level);
        }
        self.level_queue = order.into();
        true
    }

    /// The next answer. Within a ψ-level, answers are produced branch by
    /// branch (cheapest-looking branch first) and pulled lazily from the
    /// branch's evaluator — a caller that stops early never pays for the
    /// remaining branches at that level. Across levels, answers are in
    /// non-decreasing distance order.
    pub fn get_next(&mut self) -> Result<Option<ConjunctAnswer>> {
        loop {
            // Drain the branch currently being evaluated.
            if let Some((idx, mut evaluator)) = self.current.take() {
                match evaluator.get_next()? {
                    Some(answer) => {
                        let fresh = self.emitted.insert((answer.x, answer.y));
                        self.current = Some((idx, evaluator));
                        if fresh {
                            self.branches[idx].answers_last_level += 1;
                            self.stats.answers += 1;
                            return Ok(Some(answer));
                        }
                        continue;
                    }
                    None => {
                        self.branches[idx].may_have_more = evaluator.suppressed() > 0;
                        self.stats += evaluator.stats();
                        // A branch that ended by graceful degradation makes
                        // the whole disjunction degraded: later branches (or
                        // levels) could emit ranks beyond this branch's
                        // truncated frontier, so the stream stops here to
                        // keep every emitted answer inside the proven prefix.
                        if self.stats.degraded {
                            self.exhausted = true;
                            return Ok(None);
                        }
                        continue;
                    }
                }
            }
            if self.exhausted {
                return Ok(None);
            }
            // Start the next branch of the current level, if any.
            if let Some(idx) = self.level_queue.pop_front() {
                self.branches[idx].answers_last_level = 0;
                let evaluator = ConjunctEvaluator::new(
                    Arc::clone(&self.branches[idx].plan),
                    self.graph,
                    self.ontology,
                    Arc::clone(&self.options),
                    Some(self.psi),
                );
                self.current = Some((idx, evaluator));
                continue;
            }
            if !self.advance_level() {
                self.exhausted = true;
            }
        }
    }

    /// Runs to completion (or `limit` answers).
    pub fn collect(&mut self, limit: Option<usize>) -> Result<Vec<ConjunctAnswer>> {
        let mut out = Vec::new();
        while limit.is_none_or(|l| out.len() < l) {
            match self.get_next()? {
                Some(a) => out.push(a),
                None => break,
            }
        }
        Ok(out)
    }
}

impl AnswerStream for DisjunctionEvaluator<'_> {
    fn next_answer(&mut self) -> Result<Option<ConjunctAnswer>> {
        self.get_next()
    }

    fn stats(&self) -> EvalStats {
        self.stats
    }
}

/// Compiles one plan per branch of a top-level alternation, or `Ok(None)`
/// when the conjunct's regular expression is not an alternation. Used by
/// [`DisjunctionEvaluator::try_new`] and by prepared queries, which compile
/// the branches once and reuse them across executions.
pub fn compile_branches(
    conjunct: &Conjunct,
    graph: &GraphStore,
    ontology: &Ontology,
    options: &EvalOptions,
) -> Result<Option<Vec<Arc<ConjunctPlan>>>> {
    let Some(parts) = decompose_alternation(&conjunct.regex) else {
        return Ok(None);
    };
    let mut plans = Vec::with_capacity(parts.len());
    for part in parts {
        let sub = Conjunct {
            regex: part,
            ..conjunct.clone()
        };
        plans.push(Arc::new(compile_conjunct(&sub, graph, ontology, options)?));
    }
    Ok(Some(plans))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parser::parse_query;

    fn setup() -> (GraphStore, Ontology) {
        let mut g = GraphStore::new();
        // branch 1: UK -livesIn-> nobody (needs approximation)
        // branch 2: UK <-locatedIn- college -gradFrom-> … (plenty of exact answers)
        g.add_triple("college", "locatedIn", "UK");
        g.add_triple("alice", "gradFrom", "college");
        g.add_triple("bob", "gradFrom", "college");
        g.add_triple("carol", "livesIn", "UK");
        g.add_triple("UK", "hasCurrency", "pound");
        (g, Ontology::new())
    }

    fn query() -> &'static str {
        "(?X) <- APPROX (UK, (livesIn-.hasCurrency)|(locatedIn-.gradFrom-), ?X)"
    }

    #[test]
    fn decomposes_only_top_level_alternations() {
        let (g, o) = setup();
        let q = parse_query(query()).unwrap();
        let d = DisjunctionEvaluator::try_new(
            &q.conjuncts[0],
            &g,
            &o,
            Arc::new(EvalOptions::default()),
        )
        .unwrap()
        .unwrap();
        assert_eq!(d.branch_count(), 2);

        let q = parse_query("(?X) <- APPROX (UK, locatedIn-.gradFrom-, ?X)").unwrap();
        assert!(DisjunctionEvaluator::try_new(
            &q.conjuncts[0],
            &g,
            &o,
            Arc::new(EvalOptions::default())
        )
        .unwrap()
        .is_none());
    }

    #[test]
    fn produces_same_answer_set_as_plain_evaluation() {
        let (g, o) = setup();
        let q = parse_query(query()).unwrap();
        let options = EvalOptions::default();
        let mut plain =
            crate::eval::conjunct::evaluate_conjunct(&q.conjuncts[0], &g, &o, &options).unwrap();
        let mut expected: Vec<_> = plain
            .collect(None)
            .unwrap()
            .iter()
            .map(|a| (a.x, a.y, a.distance))
            .collect();
        expected.sort_unstable();
        let mut decomposed =
            DisjunctionEvaluator::try_new(&q.conjuncts[0], &g, &o, Arc::new(options.clone()))
                .unwrap()
                .unwrap();
        let mut got: Vec<_> = decomposed
            .collect(None)
            .unwrap()
            .iter()
            .map(|a| (a.x, a.y, a.distance))
            .collect();
        got.sort_unstable();
        assert_eq!(expected, got);
    }

    #[test]
    fn answers_are_sorted_and_deduplicated() {
        let (g, o) = setup();
        let q = parse_query(query()).unwrap();
        let mut decomposed = DisjunctionEvaluator::try_new(
            &q.conjuncts[0],
            &g,
            &o,
            Arc::new(EvalOptions::default()),
        )
        .unwrap()
        .unwrap();
        let answers = decomposed.collect(None).unwrap();
        let distances: Vec<u32> = answers.iter().map(|a| a.distance).collect();
        let mut sorted = distances.clone();
        sorted.sort_unstable();
        assert_eq!(distances, sorted);
        let mut pairs: Vec<_> = answers.iter().map(|a| (a.x, a.y)).collect();
        let before = pairs.len();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), before, "answers must be distinct");
    }

    #[test]
    fn limit_zero_answers_costs_one_level_only() {
        let (g, o) = setup();
        let q = parse_query(query()).unwrap();
        let mut decomposed = DisjunctionEvaluator::try_new(
            &q.conjuncts[0],
            &g,
            &o,
            Arc::new(EvalOptions::default()),
        )
        .unwrap()
        .unwrap();
        // The exact (distance-0) answers from branch 2 satisfy the limit, so
        // ψ never escalates.
        let answers = decomposed.collect(Some(2)).unwrap();
        assert_eq!(answers.len(), 2);
        assert_eq!(decomposed.psi(), 0);
    }
}
