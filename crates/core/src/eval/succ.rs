//! The `Succ` function: automaton-guided neighbour expansion.
//!
//! Given a node `(s, n)` of the (lazily constructed) weighted product
//! automaton `H_R`, `Succ` returns its outgoing transitions: for each
//! automaton transition leaving `s`, the graph neighbours of `n` reachable
//! over edges that match the transition's label. The automaton therefore
//! guides which adjacency lists are ever touched, and consecutive transitions
//! carrying the same label reuse a single neighbour lookup (the paper's
//! `prevlabel` refinement).
//!
//! This is the hottest code in the engine, so it is written to avoid heap
//! allocation entirely on the common path: [`neighbours_by_edge`] returns a
//! borrowed `&[NodeId]` — for plain symbol transitions that is the graph's
//! own (CSR) adjacency slice, and for ε / unresolved symbols a shared empty
//! slice; only wildcard / inference / `TypeTo` labels compute into a
//! caller-provided buffer that is reused across calls. [`succ`] likewise
//! appends into a reusable output vector instead of returning a fresh one.

use omega_automata::{MinCostToAccept, StateId, TransitionLabel, WeightedNfa};
use omega_graph::{Direction, GraphStore, LabelId, NodeId};
use omega_ontology::Ontology;

use crate::eval::stats::EvalStats;

/// Which transition costs an expansion materialises.
///
/// Cost-guided evaluation splits each tuple's expansion in two: the 0-cost
/// skeleton successors are produced when the tuple pops, and the
/// positive-cost successors (wildcard edits, relaxations) only when a
/// deferred placeholder re-pops at the key where they can first matter —
/// so a label whose transitions are all filtered out never even pays its
/// neighbour lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostFilter {
    /// Every transition (plain, non-guided evaluation).
    All,
    /// Only cost-0 transitions (the fresh pop of a cost-guided tuple).
    ZeroOnly,
    /// Only positive-cost transitions (the deferred re-expansion).
    PositiveOnly,
}

impl CostFilter {
    #[inline]
    fn admits(self, cost: u32) -> bool {
        match self {
            CostFilter::All => true,
            CostFilter::ZeroOnly => cost == 0,
            CostFilter::PositiveOnly => cost > 0,
        }
    }
}

/// The empty neighbour set, returned without touching the heap for
/// transitions that can never match an edge (ε and unresolved symbols).
const EMPTY: &[NodeId] = &[];

/// One product-automaton transition produced by [`succ`]: reach graph node
/// `node` in automaton state `state` at additional cost `cost`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuccTransition {
    /// Additional distance incurred by the step.
    pub cost: u32,
    /// Target automaton state.
    pub state: StateId,
    /// Target graph node.
    pub node: NodeId,
}

/// Reusable buffers for [`succ`].
///
/// One instance lives in each evaluator; after the first few calls the
/// buffers stop growing and every expansion is allocation-free.
#[derive(Debug, Default)]
pub struct SuccScratch {
    /// Computed neighbour sets (wildcards, inference, `TypeTo`).
    neighbours: Vec<NodeId>,
    /// `(cost, state)` pairs of the current same-label transition run.
    run: Vec<(u32, StateId)>,
}

impl SuccScratch {
    /// Creates empty scratch buffers.
    pub fn new() -> SuccScratch {
        SuccScratch::default()
    }
}

/// The neighbours of `node` reachable over edges matching `label`
/// (the paper's `NeighboursByEdge`).
///
/// Returns a slice borrowed either from the graph's adjacency (symbol
/// transitions: zero copies, zero allocations) or from `buf` (labels whose
/// neighbour set must be computed; the buffer is cleared and refilled).
///
/// Under RDFS inference (`inference = true`, RELAX conjuncts) a property
/// label also matches edges labelled by any of its sub-properties, and a
/// `TypeTo(c)` constraint accepts `type` edges into any subclass of `c`
/// (the step then lands on `c` itself, the class the relaxed query names).
pub fn neighbours_by_edge<'a>(
    graph: &'a GraphStore,
    ontology: &Ontology,
    inference: bool,
    node: NodeId,
    label: &TransitionLabel,
    buf: &'a mut Vec<NodeId>,
    stats: &mut EvalStats,
) -> &'a [NodeId] {
    stats.neighbour_lookups += 1;
    match label {
        TransitionLabel::Epsilon => EMPTY,
        TransitionLabel::Symbol { label: None, .. } => EMPTY,
        TransitionLabel::Symbol {
            label: Some(l),
            inverse,
            ..
        } => {
            let dir = if *inverse {
                Direction::Incoming
            } else {
                Direction::Outgoing
            };
            if inference && *l == graph.type_label() {
                // RDFS `sc` inference on type edges: an instance of a class
                // is also an instance of every superclass. On a frozen
                // ontology the class closures are interned slices, so this
                // path performs no allocation beyond the shared buffer.
                buf.clear();
                if *inverse {
                    // Instances of `node` (a class) and of all its subclasses.
                    let fallback;
                    let classes: &[NodeId] = if ontology.is_frozen() {
                        // Unknown class: no subclasses, just the node itself.
                        ontology
                            .interned_subclasses_or_self(node)
                            .unwrap_or(std::slice::from_ref(&node))
                    } else {
                        fallback = ontology.subclasses_or_self(node);
                        &fallback
                    };
                    for &class in classes {
                        for m in graph.neighbors_iter(class, *l, Direction::Incoming) {
                            if !buf.contains(&m) {
                                buf.push(m);
                            }
                        }
                    }
                } else {
                    // The node's declared classes plus all their superclasses.
                    buf.extend(graph.neighbors_iter(node, *l, Direction::Outgoing));
                    let declared = buf.len();
                    let frozen = ontology.is_frozen();
                    for i in 0..declared {
                        let class = buf[i];
                        if frozen {
                            // Unknown class: no superclasses to add.
                            for &(sup, _) in ontology.interned_superclasses(class).unwrap_or(&[]) {
                                if !buf.contains(&sup) {
                                    buf.push(sup);
                                }
                            }
                        } else {
                            for (sup, _) in ontology.superclasses(class) {
                                if !buf.contains(&sup) {
                                    buf.push(sup);
                                }
                            }
                        }
                    }
                }
                buf
            } else if inference {
                // RDFS `sp` inference: `l` also matches edges labelled by
                // any of its sub-properties. On a frozen ontology the
                // closure is an interned slice — no `Vec` per expansion
                // (the ROADMAP's "zero-allocation RELAX inference" item);
                // an unknown property's closure is just the property.
                let fallback;
                let labels: &[LabelId] = if ontology.is_frozen() {
                    ontology
                        .interned_subproperties_or_self(*l)
                        .unwrap_or(std::slice::from_ref(l))
                } else {
                    fallback = ontology.subproperties_or_self(*l);
                    &fallback
                };
                if let [only] = labels {
                    // No sub-properties: serve the graph's slice directly
                    // (`neighbors_into` only copies when a delta overlay
                    // actually touches this slice).
                    return graph.neighbors_into(node, *only, dir, buf);
                }
                buf.clear();
                for &l in labels {
                    for m in graph.neighbors_iter(node, l, dir) {
                        if !buf.contains(&m) {
                            buf.push(m);
                        }
                    }
                }
                buf
            } else {
                graph.neighbors_into(node, *l, dir, buf)
            }
        }
        TransitionLabel::AnyForward => {
            buf.clear();
            buf.extend(
                graph
                    .neighbors_any_iter(node, Direction::Outgoing)
                    .map(|(_, n)| n),
            );
            buf.sort_unstable();
            buf.dedup();
            buf
        }
        TransitionLabel::Any => {
            buf.clear();
            buf.extend(
                graph
                    .neighbors_any_iter(node, Direction::Outgoing)
                    .chain(graph.neighbors_any_iter(node, Direction::Incoming))
                    .map(|(_, n)| n),
            );
            buf.sort_unstable();
            buf.dedup();
            buf
        }
        TransitionLabel::TypeTo { class, .. } => {
            let type_label = graph.type_label();
            let mut targets = graph.neighbors_iter(node, type_label, Direction::Outgoing);
            let hit = if inference {
                targets.any(|t| t == *class || ontology.is_superclass_of(*class, t))
            } else {
                targets.any(|t| t == *class)
            };
            if hit {
                buf.clear();
                buf.push(*class);
                buf
            } else {
                EMPTY
            }
        }
    }
}

/// The paper's `Succ(s, n)`: the product-automaton transitions leaving
/// `(s, n)` that `filter` admits, appended to `out` (cleared first).
///
/// Consecutive automaton transitions with the same label (the automaton keeps
/// its transitions label-sorted) share one `neighbours_by_edge` call, and the
/// caller's `out` / `scratch` buffers are reused so the steady state performs
/// no allocation. When `bounds` is supplied (cost-guided evaluation),
/// transitions into dead automaton states — states that can never reach
/// acceptance against this graph — are dropped before any adjacency is
/// touched, and a label whose entire run is filtered out skips its
/// neighbour lookup altogether.
#[allow(clippy::too_many_arguments)]
pub fn succ(
    graph: &GraphStore,
    ontology: &Ontology,
    inference: bool,
    nfa: &WeightedNfa,
    state: StateId,
    node: NodeId,
    filter: CostFilter,
    bounds: Option<&MinCostToAccept>,
    out: &mut Vec<SuccTransition>,
    scratch: &mut SuccScratch,
    stats: &mut EvalStats,
) {
    stats.succ_calls += 1;
    out.clear();
    let SuccScratch { neighbours, run } = scratch;
    let mut transitions = nfa.transitions_from(state).peekable();
    while let Some(first) = transitions.next() {
        // Gather the admitted run of transitions sharing `first.label`.
        run.clear();
        for t in std::iter::once(first).chain(std::iter::from_fn(|| {
            transitions.next_if(|next| next.label == first.label)
        })) {
            if !filter.admits(t.cost) {
                continue;
            }
            if bounds.is_some_and(|b| b.is_dead(t.to)) {
                stats.pruned_dead += 1;
                continue;
            }
            run.push((t.cost, t.to));
        }
        if run.is_empty() {
            continue;
        }
        let reached = neighbours_by_edge(
            graph,
            ontology,
            inference,
            node,
            &first.label,
            &mut *neighbours,
            stats,
        );
        for &(cost, to) in run.iter() {
            for &m in reached {
                out.push(SuccTransition {
                    cost,
                    state: to,
                    node: m,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_automata::build_nfa;
    use omega_regex::parse;

    fn setup() -> (GraphStore, Ontology) {
        let mut g = GraphStore::new();
        g.add_triple("a", "knows", "b");
        g.add_triple("a", "likes", "c");
        g.add_triple("c", "knows", "a");
        g.add_triple("a", "type", "Student");
        let mut o = Ontology::new();
        let related = g.intern_label("related");
        let knows = g.label_id("knows").unwrap();
        o.add_subproperty(knows, related).unwrap();
        let student = g.node_by_label("Student").unwrap();
        let person = g.add_node("Person");
        o.add_subclass(student, person).unwrap();
        (g, o)
    }

    fn lookup(
        graph: &GraphStore,
        ontology: &Ontology,
        inference: bool,
        node: NodeId,
        label: &TransitionLabel,
        stats: &mut EvalStats,
    ) -> Vec<NodeId> {
        let mut buf = Vec::new();
        neighbours_by_edge(graph, ontology, inference, node, label, &mut buf, stats).to_vec()
    }

    fn run_succ(
        graph: &GraphStore,
        ontology: &Ontology,
        nfa: &WeightedNfa,
        state: StateId,
        node: NodeId,
        stats: &mut EvalStats,
    ) -> Vec<SuccTransition> {
        let mut out = Vec::new();
        let mut scratch = SuccScratch::new();
        succ(
            graph,
            ontology,
            false,
            nfa,
            state,
            node,
            CostFilter::All,
            None,
            &mut out,
            &mut scratch,
            stats,
        );
        out
    }

    #[test]
    fn symbol_labels_respect_direction() {
        let (g, o) = setup();
        let mut stats = EvalStats::default();
        let a = g.node_by_label("a").unwrap();
        let knows = g.label_id("knows").unwrap();
        let fwd = lookup(
            &g,
            &o,
            false,
            a,
            &TransitionLabel::symbol(Some(knows), false, "knows"),
            &mut stats,
        );
        assert_eq!(fwd, vec![g.node_by_label("b").unwrap()]);
        let back = lookup(
            &g,
            &o,
            false,
            a,
            &TransitionLabel::symbol(Some(knows), true, "knows"),
            &mut stats,
        );
        assert_eq!(back, vec![g.node_by_label("c").unwrap()]);
        assert_eq!(stats.neighbour_lookups, 2);
    }

    #[test]
    fn symbol_lookup_bypasses_the_scratch_buffer() {
        // The returned slice for a plain symbol must alias the graph's own
        // adjacency storage, not the scratch buffer.
        let (g, o) = setup();
        let mut stats = EvalStats::default();
        let a = g.node_by_label("a").unwrap();
        let knows = g.label_id("knows").unwrap();
        let mut buf = vec![NodeId(999)]; // sentinel: must not be touched
        let fwd = neighbours_by_edge(
            &g,
            &o,
            false,
            a,
            &TransitionLabel::symbol(Some(knows), false, "knows"),
            &mut buf,
            &mut stats,
        );
        assert_eq!(fwd, g.neighbors(a, knows, Direction::Outgoing));
        assert_eq!(buf, vec![NodeId(999)], "scratch must be untouched");
    }

    #[test]
    fn unresolved_symbols_match_nothing() {
        let (g, o) = setup();
        let mut stats = EvalStats::default();
        let a = g.node_by_label("a").unwrap();
        let out = lookup(
            &g,
            &o,
            false,
            a,
            &TransitionLabel::symbol(None, false, "ghost"),
            &mut stats,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn wildcard_any_covers_both_directions() {
        let (g, o) = setup();
        let mut stats = EvalStats::default();
        let a = g.node_by_label("a").unwrap();
        let all = lookup(&g, &o, false, a, &TransitionLabel::Any, &mut stats);
        // b (knows), c (likes out, knows in), Student (type)
        assert_eq!(all.len(), 3);
        let fwd = lookup(&g, &o, false, a, &TransitionLabel::AnyForward, &mut stats);
        assert_eq!(fwd.len(), 3); // b, c, Student — all outgoing
        let c = g.node_by_label("c").unwrap();
        let c_fwd = lookup(&g, &o, false, c, &TransitionLabel::AnyForward, &mut stats);
        assert_eq!(c_fwd, vec![a]);
    }

    #[test]
    fn inference_expands_subproperties() {
        let (g, o) = setup();
        let mut stats = EvalStats::default();
        let a = g.node_by_label("a").unwrap();
        let related = g.label_id("related").unwrap();
        let strict = lookup(
            &g,
            &o,
            false,
            a,
            &TransitionLabel::symbol(Some(related), false, "related"),
            &mut stats,
        );
        assert!(strict.is_empty(), "no edge is labelled `related` directly");
        let inferred = lookup(
            &g,
            &o,
            true,
            a,
            &TransitionLabel::symbol(Some(related), false, "related"),
            &mut stats,
        );
        assert_eq!(inferred, vec![g.node_by_label("b").unwrap()]);
    }

    #[test]
    fn frozen_ontology_inference_matches_unfrozen() {
        // The interned-closure fast paths must return exactly what the
        // allocating BFS paths return, for every inference label shape.
        let (g, o) = setup();
        let mut frozen = o.clone();
        frozen.freeze();
        let related = g.label_id("related").unwrap();
        let knows = g.label_id("knows").unwrap();
        let type_l = g.type_label();
        let person = g.node_by_label("Person").unwrap();
        let student = g.node_by_label("Student").unwrap();
        let labels = [
            TransitionLabel::symbol(Some(related), false, "related"),
            TransitionLabel::symbol(Some(related), true, "related"),
            TransitionLabel::symbol(Some(knows), false, "knows"),
            TransitionLabel::symbol(Some(type_l), false, "type"),
            TransitionLabel::symbol(Some(type_l), true, "type"),
            TransitionLabel::TypeTo {
                class: person,
                name: "Person".into(),
            },
            TransitionLabel::TypeTo {
                class: student,
                name: "Student".into(),
            },
        ];
        let mut stats = EvalStats::default();
        for node in g.node_ids() {
            for label in &labels {
                assert_eq!(
                    lookup(&g, &o, true, node, label, &mut stats),
                    lookup(&g, &frozen, true, node, label, &mut stats),
                    "divergence at node {node} label {label:?}"
                );
            }
        }
    }

    #[test]
    fn type_to_lands_on_the_named_class() {
        let (g, o) = setup();
        let mut stats = EvalStats::default();
        let a = g.node_by_label("a").unwrap();
        let student = g.node_by_label("Student").unwrap();
        let person = g.node_by_label("Person").unwrap();
        let strict = lookup(
            &g,
            &o,
            false,
            a,
            &TransitionLabel::TypeTo {
                class: person,
                name: "Person".into(),
            },
            &mut stats,
        );
        assert!(strict.is_empty(), "a is typed Student, not Person");
        let inferred = lookup(
            &g,
            &o,
            true,
            a,
            &TransitionLabel::TypeTo {
                class: person,
                name: "Person".into(),
            },
            &mut stats,
        );
        assert_eq!(inferred, vec![person], "lands on Person, not Student");
        let direct = lookup(
            &g,
            &o,
            false,
            a,
            &TransitionLabel::TypeTo {
                class: student,
                name: "Student".into(),
            },
            &mut stats,
        );
        assert_eq!(direct, vec![student]);
    }

    #[test]
    fn succ_follows_automaton_transitions() {
        let (g, o) = setup();
        let mut stats = EvalStats::default();
        let nfa = omega_automata::remove_epsilons(&build_nfa(&parse("knows|likes").unwrap(), &g));
        let a = g.node_by_label("a").unwrap();
        let out = run_succ(&g, &o, &nfa, nfa.initial(), a, &mut stats);
        let nodes: std::collections::HashSet<_> = out.iter().map(|t| t.node).collect();
        assert!(nodes.contains(&g.node_by_label("b").unwrap()));
        assert!(nodes.contains(&g.node_by_label("c").unwrap()));
        assert_eq!(stats.succ_calls, 1);
        assert!(out.iter().all(|t| t.cost == 0));
    }

    #[test]
    fn succ_reuses_lookups_for_identical_labels() {
        let (g, o) = setup();
        let mut stats = EvalStats::default();
        // knows.x | knows.y produces two `knows` transitions from the initial
        // state (to different states); one lookup must serve both.
        let nfa = omega_automata::remove_epsilons(&build_nfa(
            &parse("(knows.likes)|(knows.type)").unwrap(),
            &g,
        ));
        let a = g.node_by_label("a").unwrap();
        let initial_knows_transitions = nfa
            .transitions_from(nfa.initial())
            .filter(|t| t.label.to_string() == "knows")
            .count();
        assert!(initial_knows_transitions >= 2);
        let _ = run_succ(&g, &o, &nfa, nfa.initial(), a, &mut stats);
        assert_eq!(
            stats.neighbour_lookups, 1,
            "consecutive identical labels must share a neighbour lookup"
        );
    }

    #[test]
    fn succ_output_buffer_is_cleared_between_calls() {
        let (g, o) = setup();
        let mut stats = EvalStats::default();
        let nfa = omega_automata::remove_epsilons(&build_nfa(&parse("knows").unwrap(), &g));
        let a = g.node_by_label("a").unwrap();
        let mut out = Vec::new();
        let mut scratch = SuccScratch::new();
        succ(
            &g,
            &o,
            false,
            &nfa,
            nfa.initial(),
            a,
            CostFilter::All,
            None,
            &mut out,
            &mut scratch,
            &mut stats,
        );
        let first = out.clone();
        succ(
            &g,
            &o,
            false,
            &nfa,
            nfa.initial(),
            a,
            CostFilter::All,
            None,
            &mut out,
            &mut scratch,
            &mut stats,
        );
        assert_eq!(out, first, "stale entries must not accumulate");
    }

    #[test]
    fn cost_filter_splits_expansions_without_losing_any() {
        use omega_automata::{approximate, ApproxConfig};
        let (g, o) = setup();
        let nfa = omega_automata::remove_epsilons(&approximate(
            &build_nfa(&parse("knows").unwrap(), &g),
            &ApproxConfig::default(),
        ));
        let a = g.node_by_label("a").unwrap();
        let mut scratch = SuccScratch::new();
        let mut run = |filter: CostFilter, stats: &mut EvalStats| {
            let mut out = Vec::new();
            succ(
                &g,
                &o,
                false,
                &nfa,
                nfa.initial(),
                a,
                filter,
                None,
                &mut out,
                &mut scratch,
                stats,
            );
            out
        };
        let mut stats = EvalStats::default();
        let mut all = run(CostFilter::All, &mut stats);
        let all_lookups = stats.neighbour_lookups;
        let mut stats = EvalStats::default();
        let zero = run(CostFilter::ZeroOnly, &mut stats);
        assert!(
            stats.neighbour_lookups < all_lookups,
            "a zero-only expansion must skip the wildcard lookups entirely"
        );
        let mut stats = EvalStats::default();
        let positive = run(CostFilter::PositiveOnly, &mut stats);
        assert!(zero.iter().all(|t| t.cost == 0));
        assert!(positive.iter().all(|t| t.cost > 0));
        let mut split: Vec<_> = zero.into_iter().chain(positive).collect();
        let key = |t: &SuccTransition| (t.cost, t.state, t.node);
        split.sort_by_key(key);
        all.sort_by_key(key);
        assert_eq!(split, all, "the two phases must partition the expansion");
    }

    #[test]
    fn dead_states_are_pruned_before_the_lookup() {
        use omega_automata::MinCostToAccept;
        let (g, o) = setup();
        let nfa = omega_automata::remove_epsilons(&build_nfa(&parse("knows.ghost").unwrap(), &g));
        let a = g.node_by_label("a").unwrap();
        // `ghost` resolves to no graph label, so the post-`knows` state is
        // dead under a graph-aware liveness predicate.
        let bounds = MinCostToAccept::compute_with(&nfa, |l| {
            !matches!(l, TransitionLabel::Symbol { label: None, .. })
        });
        let mut out = Vec::new();
        let mut scratch = SuccScratch::new();
        let mut stats = EvalStats::default();
        succ(
            &g,
            &o,
            false,
            &nfa,
            nfa.initial(),
            a,
            CostFilter::All,
            Some(&bounds),
            &mut out,
            &mut scratch,
            &mut stats,
        );
        assert!(out.is_empty(), "the only successor lands in a dead state");
        assert!(stats.pruned_dead > 0);
        assert_eq!(
            stats.neighbour_lookups, 0,
            "the adjacency must never be touched for a fully dead run"
        );
    }
}
