//! The `Succ` function: automaton-guided neighbour expansion.
//!
//! Given a node `(s, n)` of the (lazily constructed) weighted product
//! automaton `H_R`, `Succ` returns its outgoing transitions: for each
//! automaton transition leaving `s`, the graph neighbours of `n` reachable
//! over edges that match the transition's label. The automaton therefore
//! guides which adjacency lists are ever touched, and consecutive transitions
//! carrying the same label reuse a single neighbour lookup (the paper's
//! `prevlabel` refinement).

use omega_automata::{StateId, TransitionLabel, WeightedNfa};
use omega_graph::{Direction, GraphStore, NodeId};
use omega_ontology::Ontology;

use crate::eval::stats::EvalStats;

/// One product-automaton transition produced by [`succ`]: reach graph node
/// `node` in automaton state `state` at additional cost `cost`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuccTransition {
    /// Additional distance incurred by the step.
    pub cost: u32,
    /// Target automaton state.
    pub state: StateId,
    /// Target graph node.
    pub node: NodeId,
}

/// The neighbours of `node` reachable over edges matching `label`
/// (the paper's `NeighboursByEdge`).
///
/// Under RDFS inference (`inference = true`, RELAX conjuncts) a property
/// label also matches edges labelled by any of its sub-properties, and a
/// `TypeTo(c)` constraint accepts `type` edges into any subclass of `c`
/// (the step then lands on `c` itself, the class the relaxed query names).
pub fn neighbours_by_edge(
    graph: &GraphStore,
    ontology: &Ontology,
    inference: bool,
    node: NodeId,
    label: &TransitionLabel,
    stats: &mut EvalStats,
) -> Vec<NodeId> {
    stats.neighbour_lookups += 1;
    match label {
        TransitionLabel::Epsilon => Vec::new(),
        TransitionLabel::Symbol { label: None, .. } => Vec::new(),
        TransitionLabel::Symbol {
            label: Some(l),
            inverse,
            ..
        } => {
            let dir = if *inverse {
                Direction::Incoming
            } else {
                Direction::Outgoing
            };
            if inference && *l == graph.type_label() {
                // RDFS `sc` inference on type edges: an instance of a class
                // is also an instance of every superclass.
                if *inverse {
                    // Instances of `node` (a class) and of all its subclasses.
                    let mut out = Vec::new();
                    for class in ontology.subclasses_or_self(node) {
                        for &m in graph.neighbors(class, *l, Direction::Incoming) {
                            if !out.contains(&m) {
                                out.push(m);
                            }
                        }
                    }
                    out
                } else {
                    // The node's declared classes plus all their superclasses.
                    let mut out: Vec<NodeId> =
                        graph.neighbors(node, *l, Direction::Outgoing).to_vec();
                    let declared = out.clone();
                    for class in declared {
                        for (sup, _) in ontology.superclasses(class) {
                            if !out.contains(&sup) {
                                out.push(sup);
                            }
                        }
                    }
                    out
                }
            } else if inference {
                let labels = ontology.subproperties_or_self(*l);
                graph.neighbors_multi(node, &labels, dir)
            } else {
                graph.neighbors(node, *l, dir).to_vec()
            }
        }
        TransitionLabel::AnyForward => {
            let mut out: Vec<NodeId> = graph
                .neighbors_any(node, Direction::Outgoing)
                .map(|(_, n)| n)
                .collect();
            out.sort_unstable();
            out.dedup();
            out
        }
        TransitionLabel::Any => {
            let mut out: Vec<NodeId> = graph
                .neighbors_any(node, Direction::Outgoing)
                .chain(graph.neighbors_any(node, Direction::Incoming))
                .map(|(_, n)| n)
                .collect();
            out.sort_unstable();
            out.dedup();
            out
        }
        TransitionLabel::TypeTo { class, .. } => {
            let type_label = graph.type_label();
            let targets = graph.neighbors(node, type_label, Direction::Outgoing);
            let hit = if inference {
                targets
                    .iter()
                    .any(|&t| t == *class || ontology.is_superclass_of(*class, t))
            } else {
                targets.contains(class)
            };
            if hit {
                vec![*class]
            } else {
                Vec::new()
            }
        }
    }
}

/// The paper's `Succ(s, n)`: all product-automaton transitions leaving
/// `(s, n)`.
///
/// Consecutive automaton transitions with the same label (the automaton keeps
/// its transitions label-sorted) share one `neighbours_by_edge` call.
pub fn succ(
    graph: &GraphStore,
    ontology: &Ontology,
    inference: bool,
    nfa: &WeightedNfa,
    state: StateId,
    node: NodeId,
    stats: &mut EvalStats,
) -> Vec<SuccTransition> {
    stats.succ_calls += 1;
    let mut out = Vec::new();
    let mut prev_label: Option<&TransitionLabel> = None;
    let mut cached: Vec<NodeId> = Vec::new();
    for t in nfa.transitions_from(state) {
        if prev_label != Some(&t.label) {
            cached = neighbours_by_edge(graph, ontology, inference, node, &t.label, stats);
            prev_label = Some(&t.label);
        }
        for &m in &cached {
            out.push(SuccTransition {
                cost: t.cost,
                state: t.to,
                node: m,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_automata::build_nfa;
    use omega_regex::parse;

    fn setup() -> (GraphStore, Ontology) {
        let mut g = GraphStore::new();
        g.add_triple("a", "knows", "b");
        g.add_triple("a", "likes", "c");
        g.add_triple("c", "knows", "a");
        g.add_triple("a", "type", "Student");
        let mut o = Ontology::new();
        let related = g.intern_label("related");
        let knows = g.label_id("knows").unwrap();
        o.add_subproperty(knows, related).unwrap();
        let student = g.node_by_label("Student").unwrap();
        let person = g.add_node("Person");
        o.add_subclass(student, person).unwrap();
        (g, o)
    }

    #[test]
    fn symbol_labels_respect_direction() {
        let (g, o) = setup();
        let mut stats = EvalStats::default();
        let a = g.node_by_label("a").unwrap();
        let knows = g.label_id("knows").unwrap();
        let fwd = neighbours_by_edge(
            &g,
            &o,
            false,
            a,
            &TransitionLabel::symbol(Some(knows), false, "knows"),
            &mut stats,
        );
        assert_eq!(fwd, vec![g.node_by_label("b").unwrap()]);
        let back = neighbours_by_edge(
            &g,
            &o,
            false,
            a,
            &TransitionLabel::symbol(Some(knows), true, "knows"),
            &mut stats,
        );
        assert_eq!(back, vec![g.node_by_label("c").unwrap()]);
        assert_eq!(stats.neighbour_lookups, 2);
    }

    #[test]
    fn unresolved_symbols_match_nothing() {
        let (g, o) = setup();
        let mut stats = EvalStats::default();
        let a = g.node_by_label("a").unwrap();
        let out = neighbours_by_edge(
            &g,
            &o,
            false,
            a,
            &TransitionLabel::symbol(None, false, "ghost"),
            &mut stats,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn wildcard_any_covers_both_directions() {
        let (g, o) = setup();
        let mut stats = EvalStats::default();
        let a = g.node_by_label("a").unwrap();
        let all = neighbours_by_edge(&g, &o, false, a, &TransitionLabel::Any, &mut stats);
        // b (knows), c (likes out, knows in), Student (type)
        assert_eq!(all.len(), 3);
        let fwd = neighbours_by_edge(&g, &o, false, a, &TransitionLabel::AnyForward, &mut stats);
        assert_eq!(fwd.len(), 3); // b, c, Student — all outgoing
        let c = g.node_by_label("c").unwrap();
        let c_fwd = neighbours_by_edge(&g, &o, false, c, &TransitionLabel::AnyForward, &mut stats);
        assert_eq!(c_fwd, vec![a]);
    }

    #[test]
    fn inference_expands_subproperties() {
        let (g, o) = setup();
        let mut stats = EvalStats::default();
        let a = g.node_by_label("a").unwrap();
        let related = g.label_id("related").unwrap();
        let strict = neighbours_by_edge(
            &g,
            &o,
            false,
            a,
            &TransitionLabel::symbol(Some(related), false, "related"),
            &mut stats,
        );
        assert!(strict.is_empty(), "no edge is labelled `related` directly");
        let inferred = neighbours_by_edge(
            &g,
            &o,
            true,
            a,
            &TransitionLabel::symbol(Some(related), false, "related"),
            &mut stats,
        );
        assert_eq!(inferred, vec![g.node_by_label("b").unwrap()]);
    }

    #[test]
    fn type_to_lands_on_the_named_class() {
        let (g, o) = setup();
        let mut stats = EvalStats::default();
        let a = g.node_by_label("a").unwrap();
        let student = g.node_by_label("Student").unwrap();
        let person = g.node_by_label("Person").unwrap();
        let strict = neighbours_by_edge(
            &g,
            &o,
            false,
            a,
            &TransitionLabel::TypeTo {
                class: person,
                name: "Person".into(),
            },
            &mut stats,
        );
        assert!(strict.is_empty(), "a is typed Student, not Person");
        let inferred = neighbours_by_edge(
            &g,
            &o,
            true,
            a,
            &TransitionLabel::TypeTo {
                class: person,
                name: "Person".into(),
            },
            &mut stats,
        );
        assert_eq!(inferred, vec![person], "lands on Person, not Student");
        let direct = neighbours_by_edge(
            &g,
            &o,
            false,
            a,
            &TransitionLabel::TypeTo {
                class: student,
                name: "Student".into(),
            },
            &mut stats,
        );
        assert_eq!(direct, vec![student]);
    }

    #[test]
    fn succ_follows_automaton_transitions() {
        let (g, o) = setup();
        let mut stats = EvalStats::default();
        let nfa = omega_automata::remove_epsilons(&build_nfa(&parse("knows|likes").unwrap(), &g));
        let a = g.node_by_label("a").unwrap();
        let out = succ(&g, &o, false, &nfa, nfa.initial(), a, &mut stats);
        let nodes: std::collections::HashSet<_> = out.iter().map(|t| t.node).collect();
        assert!(nodes.contains(&g.node_by_label("b").unwrap()));
        assert!(nodes.contains(&g.node_by_label("c").unwrap()));
        assert_eq!(stats.succ_calls, 1);
        assert!(out.iter().all(|t| t.cost == 0));
    }

    #[test]
    fn succ_reuses_lookups_for_identical_labels() {
        let (g, o) = setup();
        let mut stats = EvalStats::default();
        // knows.x | knows.y produces two `knows` transitions from the initial
        // state (to different states); one lookup must serve both.
        let nfa = omega_automata::remove_epsilons(&build_nfa(
            &parse("(knows.likes)|(knows.type)").unwrap(),
            &g,
        ));
        let a = g.node_by_label("a").unwrap();
        let initial_knows_transitions = nfa
            .transitions_from(nfa.initial())
            .filter(|t| t.label.to_string() == "knows")
            .count();
        assert!(initial_knows_transitions >= 2);
        let _ = succ(&g, &o, false, &nfa, nfa.initial(), a, &mut stats);
        assert_eq!(
            stats.neighbour_lookups, 1,
            "consecutive identical labels must share a neighbour lookup"
        );
    }
}
