//! Incremental ranked join of conjunct answer streams.
//!
//! Multi-conjunct queries need their per-conjunct answer streams combined on
//! shared variables, with combined answers emitted in non-decreasing order of
//! *total* distance (the sum over conjuncts). This is the classic rank-join
//! setting (HRJN): pull answers from the input streams, join each new arrival
//! against everything already buffered from the other streams, and emit a
//! buffered combination once its total distance is provably minimal — i.e.
//! not larger than the lower bound any future combination could achieve.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

use omega_graph::NodeId;

use crate::answer::ConjunctAnswer;
use crate::error::Result;
use crate::eval::stats::EvalStats;
use crate::eval::AnswerStream;

/// Variable bindings of one (partial or complete) join result, kept sorted by
/// variable name so that equal bindings compare equal.
type Bindings = Vec<(String, NodeId)>;

/// One input stream of the join.
pub struct JoinInput<'a> {
    stream: Box<dyn AnswerStream + 'a>,
    /// Variable bound by the conjunct's subject (if it is a variable).
    subject_var: Option<String>,
    /// Variable bound by the conjunct's object (if it is a variable).
    object_var: Option<String>,
    buffer: Vec<(Bindings, u32)>,
    min_distance: Option<u32>,
    last_distance: u32,
    done: bool,
}

impl<'a> JoinInput<'a> {
    /// Wraps an answer stream together with the variables its answers bind.
    pub fn new(
        stream: Box<dyn AnswerStream + 'a>,
        subject_var: Option<String>,
        object_var: Option<String>,
    ) -> JoinInput<'a> {
        JoinInput {
            stream,
            subject_var,
            object_var,
            buffer: Vec::new(),
            min_distance: None,
            last_distance: 0,
            done: false,
        }
    }

    fn bindings_of(&self, answer: &ConjunctAnswer) -> Bindings {
        let mut out: Bindings = Vec::with_capacity(2);
        if let Some(var) = &self.subject_var {
            out.push((var.clone(), answer.x));
        }
        if let Some(var) = &self.object_var {
            // A conjunct like (?X, R, ?X) binds one variable; both endpoints
            // agree by construction, so keep a single entry.
            if self.subject_var.as_deref() != Some(var.as_str()) {
                out.push((var.clone(), answer.y));
            }
        }
        out.sort();
        out
    }
}

/// A buffered candidate combination.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Candidate {
    distance: u32,
    bindings: Bindings,
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.distance
            .cmp(&other.distance)
            .then_with(|| self.bindings.cmp(&other.bindings))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Merges two binding sets, failing on a conflicting shared variable.
fn merge_bindings(a: &Bindings, b: &Bindings) -> Option<Bindings> {
    let mut map: HashMap<&str, NodeId> = a.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    for (k, v) in b {
        match map.get(k.as_str()) {
            Some(existing) if existing != v => return None,
            _ => {
                map.insert(k, *v);
            }
        }
    }
    let mut out: Bindings = map.into_iter().map(|(k, v)| (k.to_owned(), v)).collect();
    out.sort();
    Some(out)
}

/// HRJN-style incremental rank join over conjunct answer streams.
pub struct RankJoin<'a> {
    inputs: Vec<JoinInput<'a>>,
    candidates: BinaryHeap<Reverse<Candidate>>,
    emitted: HashSet<Bindings>,
    stats: EvalStats,
}

impl<'a> RankJoin<'a> {
    /// Creates a join over the given inputs (one per conjunct).
    pub fn new(inputs: Vec<JoinInput<'a>>) -> RankJoin<'a> {
        RankJoin {
            inputs,
            candidates: BinaryHeap::new(),
            emitted: HashSet::new(),
            stats: EvalStats::default(),
        }
    }

    /// Lower bound on the total distance of any combination not yet buffered.
    /// `None` when every stream is exhausted (nothing new can appear).
    fn future_lower_bound(&self) -> Option<u32> {
        let mut best: Option<u32> = None;
        for (i, input) in self.inputs.iter().enumerate() {
            if input.done {
                continue;
            }
            let mut bound = input.last_distance;
            for (j, other) in self.inputs.iter().enumerate() {
                if i != j {
                    bound += other.min_distance.unwrap_or(0);
                }
            }
            best = Some(best.map_or(bound, |b: u32| b.min(bound)));
        }
        best
    }

    /// Pulls one answer from the most promising live stream and joins it
    /// against the other buffers. Returns `false` when every stream is done.
    fn pull_once(&mut self) -> Result<bool> {
        // Pull from the live stream whose last distance is smallest: it is
        // the one holding the lower bound down.
        let Some(idx) = self
            .inputs
            .iter()
            .enumerate()
            .filter(|(_, input)| !input.done)
            .min_by_key(|(_, input)| input.last_distance)
            .map(|(i, _)| i)
        else {
            return Ok(false);
        };
        let answer = self.inputs[idx].stream.next_answer()?;
        match answer {
            None => {
                self.inputs[idx].done = true;
                Ok(true)
            }
            Some(answer) => {
                let bindings = self.inputs[idx].bindings_of(&answer);
                let distance = answer.distance;
                {
                    let input = &mut self.inputs[idx];
                    input.last_distance = distance;
                    input.min_distance.get_or_insert(distance);
                    input.buffer.push((bindings.clone(), distance));
                }
                // Join the new arrival with every compatible combination of
                // the other inputs' buffers.
                let mut partials: Vec<(Bindings, u32)> = vec![(bindings, distance)];
                for (j, other) in self.inputs.iter().enumerate() {
                    if j == idx {
                        continue;
                    }
                    let mut next: Vec<(Bindings, u32)> = Vec::new();
                    for (partial, pd) in &partials {
                        for (buffered, bd) in &other.buffer {
                            if let Some(merged) = merge_bindings(partial, buffered) {
                                next.push((merged, pd + bd));
                            }
                        }
                    }
                    partials = next;
                    if partials.is_empty() {
                        break;
                    }
                }
                for (bindings, distance) in partials {
                    self.candidates.push(Reverse(Candidate { distance, bindings }));
                }
                Ok(true)
            }
        }
    }

    /// The next combined answer in non-decreasing total-distance order.
    pub fn get_next(&mut self) -> Result<Option<(Bindings, u32)>> {
        loop {
            let emit_now = match (self.candidates.peek(), self.future_lower_bound()) {
                (Some(Reverse(best)), Some(bound)) => best.distance <= bound,
                (Some(_), None) => true,
                (None, None) => return Ok(None),
                (None, Some(_)) => false,
            };
            if emit_now {
                let Reverse(candidate) = self.candidates.pop().expect("peeked above");
                if self.emitted.insert(candidate.bindings.clone()) {
                    self.stats.answers += 1;
                    return Ok(Some((candidate.bindings, candidate.distance)));
                }
                continue;
            }
            if !self.pull_once()? {
                // Everything exhausted; drain remaining candidates.
                continue;
            }
        }
    }
}

impl RankJoin<'_> {
    /// Accumulated statistics (including all input streams).
    pub fn stats(&self) -> EvalStats {
        let mut stats = self.stats;
        for input in &self.inputs {
            stats += input.stream.stats();
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted answer stream for unit-testing the join in isolation.
    struct Scripted {
        answers: Vec<ConjunctAnswer>,
        pos: usize,
    }

    impl Scripted {
        fn new(mut answers: Vec<(u32, u32, u32)>) -> Scripted {
            answers.sort_by_key(|&(_, _, d)| d);
            Scripted {
                answers: answers
                    .into_iter()
                    .map(|(x, y, d)| ConjunctAnswer {
                        x: NodeId(x),
                        y: NodeId(y),
                        distance: d,
                    })
                    .collect(),
                pos: 0,
            }
        }
    }

    impl AnswerStream for Scripted {
        fn next_answer(&mut self) -> Result<Option<ConjunctAnswer>> {
            let out = self.answers.get(self.pos).copied();
            self.pos += 1;
            Ok(out)
        }

        fn stats(&self) -> EvalStats {
            EvalStats::default()
        }
    }

    fn input(
        answers: Vec<(u32, u32, u32)>,
        subject: Option<&str>,
        object: Option<&str>,
    ) -> JoinInput<'static> {
        JoinInput::new(
            Box::new(Scripted::new(answers)),
            subject.map(str::to_owned),
            object.map(str::to_owned),
        )
    }

    fn binding(bindings: &Bindings, var: &str) -> u32 {
        bindings.iter().find(|(k, _)| k == var).unwrap().1 .0
    }

    #[test]
    fn joins_on_shared_variables() {
        // conjunct 1 binds (X, Y); conjunct 2 binds (Y, Z).
        let c1 = input(vec![(1, 10, 0), (2, 20, 0)], Some("X"), Some("Y"));
        let c2 = input(vec![(10, 100, 0), (30, 300, 0)], Some("Y"), Some("Z"));
        let mut join = RankJoin::new(vec![c1, c2]);
        let mut results = Vec::new();
        while let Some(r) = join.get_next().unwrap() {
            results.push(r);
        }
        assert_eq!(results.len(), 1);
        let (bindings, distance) = &results[0];
        assert_eq!(distance, &0);
        assert_eq!(binding(bindings, "X"), 1);
        assert_eq!(binding(bindings, "Y"), 10);
        assert_eq!(binding(bindings, "Z"), 100);
    }

    #[test]
    fn total_distance_is_summed_and_ordered() {
        let c1 = input(
            vec![(1, 10, 0), (1, 11, 1), (1, 12, 3)],
            Some("X"),
            Some("Y"),
        );
        let c2 = input(
            vec![(10, 100, 0), (11, 100, 0), (12, 100, 1)],
            Some("Y"),
            Some("Z"),
        );
        let mut join = RankJoin::new(vec![c1, c2]);
        let mut distances = Vec::new();
        while let Some((_, d)) = join.get_next().unwrap() {
            distances.push(d);
        }
        assert_eq!(distances, vec![0, 1, 4]);
    }

    #[test]
    fn cartesian_product_when_no_shared_variables() {
        let c1 = input(vec![(1, 10, 0), (2, 20, 1)], Some("X"), Some("Y"));
        let c2 = input(vec![(5, 50, 0)], Some("A"), Some("B"));
        let mut join = RankJoin::new(vec![c1, c2]);
        let mut count = 0;
        let mut last = 0;
        while let Some((_, d)) = join.get_next().unwrap() {
            assert!(d >= last);
            last = d;
            count += 1;
        }
        assert_eq!(count, 2);
    }

    #[test]
    fn conflicting_bindings_are_rejected() {
        // Both conjuncts bind X and Y but disagree on Y for x=1.
        let c1 = input(vec![(1, 10, 0)], Some("X"), Some("Y"));
        let c2 = input(vec![(1, 99, 0)], Some("X"), Some("Y"));
        let mut join = RankJoin::new(vec![c1, c2]);
        assert!(join.get_next().unwrap().is_none());
    }

    #[test]
    fn three_way_join() {
        let c1 = input(vec![(1, 2, 0)], Some("X"), Some("Y"));
        let c2 = input(vec![(2, 3, 1)], Some("Y"), Some("Z"));
        let c3 = input(vec![(3, 4, 2)], Some("Z"), Some("W"));
        let mut join = RankJoin::new(vec![c1, c2, c3]);
        let (bindings, distance) = join.get_next().unwrap().unwrap();
        assert_eq!(distance, 3);
        assert_eq!(bindings.len(), 4);
        assert!(join.get_next().unwrap().is_none());
    }

    #[test]
    fn duplicate_combinations_are_emitted_once() {
        // Two identical answers in stream 1 produce the same combined binding.
        let c1 = input(vec![(1, 10, 0), (1, 10, 2)], Some("X"), Some("Y"));
        let c2 = input(vec![(10, 100, 0)], Some("Y"), Some("Z"));
        let mut join = RankJoin::new(vec![c1, c2]);
        let mut results = Vec::new();
        while let Some(r) = join.get_next().unwrap() {
            results.push(r);
        }
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].1, 0, "the cheaper duplicate wins");
    }

    #[test]
    fn constant_only_conjunct_contributes_distance_but_no_bindings() {
        // A conjunct with two constants acts as a filter: it binds nothing
        // but its (possibly positive) distance still counts.
        let c1 = input(vec![(1, 10, 0)], Some("X"), None);
        let filter = input(vec![(7, 8, 2)], None, None);
        let mut join = RankJoin::new(vec![c1, filter]);
        let (bindings, distance) = join.get_next().unwrap().unwrap();
        assert_eq!(distance, 2);
        assert_eq!(bindings.len(), 1);
    }
}
