//! Incremental ranked join of conjunct answer streams.
//!
//! Multi-conjunct queries need their per-conjunct answer streams combined on
//! shared variables, with combined answers emitted in non-decreasing order of
//! *total* distance (the sum over conjuncts). This is the classic rank-join
//! setting (HRJN): pull answers from the input streams, join each new arrival
//! against everything already buffered from the other streams, and emit a
//! buffered combination once its total distance is provably minimal — i.e.
//! not larger than the lower bound any future combination could achieve.
//!
//! Variable names are resolved to dense *slot* indices once, when the join is
//! constructed: every partial result is a fixed-width `Vec<Option<NodeId>>`
//! indexed by slot, so a join attempt is a pairwise merge of two small arrays
//! — no string hashing, cloning or re-sorting per attempt (which is what the
//! previous `Vec<(String, NodeId)>` representation paid on every buffered
//! combination).
//!
//! The join is deliberately *deterministic in its inputs' contents*, never
//! in their timing: `pull_once` picks the live stream with the smallest
//! last-seen distance (first such stream on ties), and candidate emission
//! breaks distance ties on the slot bindings. Parallel conjunct evaluation
//! ([`crate::eval::parallel`]) exploits exactly this contract — it swaps
//! each input for a channel-fed [`AnswerStream`] produced on a worker
//! thread, and because each stream's *content and order* are unchanged, the
//! join's output sequence is bit-identical to sequential evaluation no
//! matter how the workers are scheduled.
//!
//! ## Buffer indexing
//!
//! Each conjunct binds at most two variables, so a new arrival probing
//! another input's buffer constrains at most that input's subject and/or
//! object slot. The buffers are therefore hash-indexed on those values
//! (subject, object, and the pair) and a probe touches only the buffered
//! bindings that *will* merge, instead of scanning the whole buffer and
//! rejecting mismatches one by one — dropping the quadratic per-arrival
//! factor that previously forced "big stream last" orderings on
//! multi-conjunct query sets. Probing order does not affect output order:
//! candidates are emitted from a heap ordered by `(distance, bindings)`.
//! Only genuinely unconstrained probes (no shared bound variable — a
//! cartesian combination) still visit every buffered binding.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use omega_graph::{FxHashMap, FxHashSet, NodeId};

use crate::answer::ConjunctAnswer;
use crate::error::Result;
use crate::eval::stats::EvalStats;
use crate::eval::AnswerStream;

/// Variable bindings of one emitted join result, name-keyed for consumers.
pub type Bindings = Vec<(String, NodeId)>;

/// Slot-indexed representation: one entry per join variable slot. Consumers
/// that resolved their variables to slot indices up front (the answer
/// stream's head projection) read this directly and never touch names.
pub type SlotBindings = Vec<Option<NodeId>>;

/// One input stream of the join.
pub struct JoinInput<'a> {
    stream: Box<dyn AnswerStream + 'a>,
    /// Variable bound by the conjunct's subject (if it is a variable).
    subject_var: Option<String>,
    /// Variable bound by the conjunct's object (if it is a variable).
    object_var: Option<String>,
    /// Slot index of the subject variable, resolved at join construction.
    subject_slot: Option<usize>,
    /// Slot index of the object variable.
    object_slot: Option<usize>,
    buffer: Vec<(SlotBindings, u32)>,
    /// Buffer positions indexed by the subject-slot value.
    by_subject: FxHashMap<NodeId, Vec<u32>>,
    /// Buffer positions indexed by the object-slot value (only populated
    /// when the object slot is distinct from the subject slot).
    by_object: FxHashMap<NodeId, Vec<u32>>,
    /// Buffer positions indexed by the (subject, object) value pair.
    by_both: FxHashMap<(NodeId, NodeId), Vec<u32>>,
    min_distance: Option<u32>,
    last_distance: u32,
    done: bool,
}

impl<'a> JoinInput<'a> {
    /// Wraps an answer stream together with the variables its answers bind.
    pub fn new(
        stream: Box<dyn AnswerStream + 'a>,
        subject_var: Option<String>,
        object_var: Option<String>,
    ) -> JoinInput<'a> {
        JoinInput {
            stream,
            subject_var,
            object_var,
            subject_slot: None,
            object_slot: None,
            buffer: Vec::new(),
            by_subject: FxHashMap::default(),
            by_object: FxHashMap::default(),
            by_both: FxHashMap::default(),
            min_distance: None,
            last_distance: 0,
            done: false,
        }
    }

    fn bindings_of(&self, answer: &ConjunctAnswer, slot_count: usize) -> SlotBindings {
        let mut out: SlotBindings = vec![None; slot_count];
        if let Some(slot) = self.subject_slot {
            out[slot] = Some(answer.x);
        }
        if let Some(slot) = self.object_slot {
            // A conjunct like (?X, R, ?X) binds one variable; both endpoints
            // agree by construction, so the subject's binding stands.
            if out[slot].is_none() {
                out[slot] = Some(answer.y);
            }
        }
        out
    }

    /// Whether the object slot indexes separately from the subject slot.
    fn has_distinct_object_slot(&self) -> bool {
        match (self.subject_slot, self.object_slot) {
            (Some(s), Some(o)) => s != o,
            (None, Some(_)) => true,
            _ => false,
        }
    }

    /// Buffers `bindings` and updates the value indexes.
    fn buffer_bindings(&mut self, bindings: SlotBindings, distance: u32) {
        let pos = self.buffer.len() as u32;
        let subject = self.subject_slot.and_then(|s| bindings[s]);
        let object = if self.has_distinct_object_slot() {
            self.object_slot.and_then(|o| bindings[o])
        } else {
            None
        };
        if let Some(s) = subject {
            self.by_subject.entry(s).or_default().push(pos);
        }
        if let Some(o) = object {
            self.by_object.entry(o).or_default().push(pos);
            if let Some(s) = subject {
                self.by_both.entry((s, o)).or_default().push(pos);
            }
        }
        self.buffer.push((bindings, distance));
    }

    /// The buffered positions that can merge with `partial`: the tightest
    /// index the partial's bound slots allow, or the whole buffer when no
    /// shared variable is bound (a cartesian combination).
    ///
    /// Indexed probes return exactly the set a full scan would keep, so the
    /// candidate multiset — and with it the emission order — is unchanged.
    fn probe<'p>(&'p self, partial: &SlotBindings) -> Probe<'p> {
        let subject = self.subject_slot.and_then(|s| partial[s]);
        let object = if self.has_distinct_object_slot() {
            self.object_slot.and_then(|o| partial[o])
        } else {
            None
        };
        let positions = match (subject, object) {
            (Some(s), Some(o)) => Some(self.by_both.get(&(s, o))),
            (Some(s), None) => Some(self.by_subject.get(&s)),
            (None, Some(o)) => Some(self.by_object.get(&o)),
            (None, None) => None,
        };
        match positions {
            // An indexed probe with no entry matches nothing.
            Some(hits) => Probe::Indexed(hits.map(Vec::as_slice).unwrap_or(&[])),
            None => Probe::Full(self.buffer.len()),
        }
    }
}

/// The buffer positions selected by [`JoinInput::probe`].
enum Probe<'p> {
    /// Positions from a value index.
    Indexed(&'p [u32]),
    /// Every buffered binding (cartesian probe): `0 .. len`.
    Full(usize),
}

impl Probe<'_> {
    fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let (indexed, full) = match self {
            Probe::Indexed(hits) => (Some(hits.iter().map(|&p| p as usize)), None),
            Probe::Full(len) => (None, Some(0..*len)),
        };
        indexed
            .into_iter()
            .flatten()
            .chain(full.into_iter().flatten())
    }
}

/// A buffered candidate combination.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Candidate {
    distance: u32,
    bindings: SlotBindings,
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.distance
            .cmp(&other.distance)
            .then_with(|| self.bindings.cmp(&other.bindings))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Merges two slot-binding arrays, failing on a conflicting shared variable.
fn merge_bindings(a: &SlotBindings, b: &SlotBindings) -> Option<SlotBindings> {
    let mut out = a.clone();
    for (slot, value) in out.iter_mut().zip(b.iter()) {
        match (&slot, value) {
            (Some(existing), Some(incoming)) if existing != incoming => return None,
            (None, Some(incoming)) => *slot = Some(*incoming),
            _ => {}
        }
    }
    Some(out)
}

/// HRJN-style incremental rank join over conjunct answer streams.
pub struct RankJoin<'a> {
    inputs: Vec<JoinInput<'a>>,
    /// Slot-index → variable name, fixed at construction.
    slots: Vec<String>,
    candidates: BinaryHeap<Reverse<Candidate>>,
    emitted: FxHashSet<SlotBindings>,
    /// LIMIT-`k` of the enclosing request, when the join's answers map 1:1
    /// onto the request's answers (every slot projected). Enables the
    /// top-k threshold below.
    limit: Option<usize>,
    /// Max-heap over the `k` smallest candidate distances seen so far; its
    /// root — once `k` candidates exist — is an upper bound τ on the
    /// distance of the `k`-th join answer. A stream whose cheapest possible
    /// future combination already exceeds τ cannot contribute to the first
    /// `k` answers and stops being pulled (which, with lazy sequential
    /// streams, stops its evaluator's expansion work outright).
    topk: BinaryHeap<u32>,
    /// Escape hatch: set when emission needs answers beyond τ after all
    /// (ties at τ excepted, capping uses strict `>`); clears every cap.
    capping_disabled: bool,
    stats: EvalStats,
}

impl<'a> RankJoin<'a> {
    /// Creates a join over the given inputs (one per conjunct), resolving
    /// every variable name to a dense slot index up front.
    pub fn new(mut inputs: Vec<JoinInput<'a>>) -> RankJoin<'a> {
        let mut slots: Vec<String> = Vec::new();
        let slot_of = |name: &str, slots: &mut Vec<String>| -> usize {
            match slots.iter().position(|s| s == name) {
                Some(i) => i,
                None => {
                    slots.push(name.to_owned());
                    slots.len() - 1
                }
            }
        };
        for input in &mut inputs {
            input.subject_slot = input.subject_var.as_deref().map(|v| slot_of(v, &mut slots));
            input.object_slot = input.object_var.as_deref().map(|v| slot_of(v, &mut slots));
        }
        RankJoin {
            inputs,
            slots,
            candidates: BinaryHeap::new(),
            emitted: FxHashSet::default(),
            limit: None,
            topk: BinaryHeap::new(),
            capping_disabled: false,
            stats: EvalStats::default(),
        }
    }

    /// Installs the enclosing request's answer limit for top-k threshold
    /// pruning. Only sound when every join answer becomes a request answer
    /// (i.e. the head projects every slot, so no join answer is consumed by
    /// projection-level deduplication) — the caller checks that. Limits of
    /// zero are ignored (such requests never pull the join at all).
    pub fn set_limit(&mut self, limit: Option<usize>) {
        self.limit = limit.filter(|&k| k > 0);
    }

    /// Upper bound τ on the `k`-th join answer's distance, once known.
    fn threshold(&self) -> Option<u32> {
        if self.capping_disabled {
            return None;
        }
        let k = self.limit?;
        if self.topk.len() >= k {
            self.topk.peek().copied()
        } else {
            None
        }
    }

    /// Records a candidate's distance in the top-k tracker.
    fn record_candidate(&mut self, distance: u32) {
        let Some(k) = self.limit else { return };
        if self.topk.len() < k {
            self.topk.push(distance);
        } else if self.topk.peek().is_some_and(|&top| distance < top) {
            self.topk.pop();
            self.topk.push(distance);
        }
    }

    /// The cheapest total distance a *future* combination involving input
    /// `i`'s next answers could have.
    fn stream_bound(&self, i: usize) -> u32 {
        let mut bound = self.inputs[i].last_distance;
        for (j, other) in self.inputs.iter().enumerate() {
            if i != j {
                bound += other.min_distance.unwrap_or(0);
            }
        }
        bound
    }

    /// Whether input `i` is capped by the top-k threshold: pulling it
    /// further cannot contribute to the first `k` answers.
    fn is_capped(&self, i: usize, tau: Option<u32>) -> bool {
        tau.is_some_and(|t| self.stream_bound(i) > t)
    }

    /// Lower bound on the total distance of any combination not yet
    /// buffered from an uncapped stream. `None` when every stream is
    /// exhausted or capped (nothing at or below τ can still appear).
    fn future_lower_bound(&self, tau: Option<u32>) -> Option<u32> {
        let mut best: Option<u32> = None;
        for (i, input) in self.inputs.iter().enumerate() {
            if input.done || self.is_capped(i, tau) {
                continue;
            }
            let bound = self.stream_bound(i);
            best = Some(best.map_or(bound, |b: u32| b.min(bound)));
        }
        best
    }

    /// Pulls one answer from the most promising live stream and joins it
    /// against the other buffers. Returns `false` when every stream is done
    /// (or capped by the top-k threshold).
    fn pull_once(&mut self, tau: Option<u32>) -> Result<bool> {
        // Pull from the live, uncapped stream whose last distance is
        // smallest: it is the one holding the lower bound down.
        let Some(idx) = self
            .inputs
            .iter()
            .enumerate()
            .filter(|&(i, input)| !input.done && !self.is_capped(i, tau))
            .min_by_key(|(_, input)| input.last_distance)
            .map(|(i, _)| i)
        else {
            return Ok(false);
        };
        let answer = self.inputs[idx].stream.next_answer()?;
        match answer {
            None => {
                self.inputs[idx].done = true;
                Ok(true)
            }
            Some(answer) => {
                let bindings = self.inputs[idx].bindings_of(&answer, self.slots.len());
                let distance = answer.distance;
                {
                    let input = &mut self.inputs[idx];
                    input.last_distance = distance;
                    input.min_distance.get_or_insert(distance);
                    input.buffer_bindings(bindings.clone(), distance);
                }
                // Join the new arrival with every compatible combination of
                // the other inputs' buffers, probing each buffer through its
                // shared-variable hash index (full scan only for cartesian
                // combinations).
                let mut partials: Vec<(SlotBindings, u32)> = vec![(bindings, distance)];
                for (j, other) in self.inputs.iter().enumerate() {
                    if j == idx {
                        continue;
                    }
                    let mut next: Vec<(SlotBindings, u32)> = Vec::new();
                    for (partial, pd) in &partials {
                        for pos in other.probe(partial).iter() {
                            let (buffered, bd) = &other.buffer[pos];
                            if let Some(merged) = merge_bindings(partial, buffered) {
                                next.push((merged, pd + bd));
                            }
                        }
                    }
                    partials = next;
                    if partials.is_empty() {
                        break;
                    }
                }
                for (bindings, distance) in partials {
                    self.record_candidate(distance);
                    self.candidates
                        .push(Reverse(Candidate { distance, bindings }));
                }
                Ok(true)
            }
        }
    }

    /// The slot index of variable `name`, if any conjunct binds it.
    pub fn slot_index(&self, name: &str) -> Option<usize> {
        self.slots.iter().position(|s| s == name)
    }

    /// Slot-index → variable name, in slot order.
    pub fn slot_names(&self) -> &[String] {
        &self.slots
    }

    /// The next combined answer as raw slot bindings, in non-decreasing
    /// total-distance order. This is the allocation-light interface used by
    /// the answer stream; [`RankJoin::get_next`] wraps it with names.
    pub fn get_next_slots(&mut self) -> Result<Option<(SlotBindings, u32)>> {
        loop {
            let tau = self.threshold();
            let bound = self.future_lower_bound(tau);
            let any_live = self.inputs.iter().any(|input| !input.done);
            let emit_now = match (self.candidates.peek(), bound) {
                // Safe against capped streams by construction: an uncapped
                // live stream has `stream_bound ≤ τ` by the definition of
                // capping, so `b ≤ τ` here and emission (`best ≤ b ≤ τ`)
                // can never release a candidate a capped stream — whose
                // future combinations all cost `> τ` — could still beat.
                (Some(Reverse(best)), Some(b)) => best.distance <= b,
                (Some(Reverse(best)), None) => {
                    if any_live && tau.is_some_and(|t| best.distance > t) {
                        // Every remaining live stream is capped, but the
                        // caller wants answers past the threshold (more
                        // join-level duplicates than expected): resume
                        // pulling everywhere rather than emit out of order.
                        self.capping_disabled = true;
                        continue;
                    }
                    true
                }
                (None, None) => {
                    if any_live {
                        // All live streams capped and no candidate buffered:
                        // the request outlived the top-k window.
                        self.capping_disabled = true;
                        continue;
                    }
                    return Ok(None);
                }
                (None, Some(_)) => false,
            };
            if emit_now {
                // `emit_now` is only reachable with a peeked candidate.
                let Some(Reverse(candidate)) = self.candidates.pop() else {
                    continue;
                };
                if self.emitted.insert(candidate.bindings.clone()) {
                    self.stats.answers += 1;
                    return Ok(Some((candidate.bindings, candidate.distance)));
                }
                continue;
            }
            if !self.pull_once(tau)? {
                // Everything exhausted (or capped); drain candidates.
                continue;
            }
        }
    }

    /// The next combined answer in non-decreasing total-distance order, with
    /// bindings resolved to variable names.
    pub fn get_next(&mut self) -> Result<Option<(Bindings, u32)>> {
        let Some((bindings, distance)) = self.get_next_slots()? else {
            return Ok(None);
        };
        let named: Bindings = self
            .slots
            .iter()
            .zip(bindings.iter())
            .filter_map(|(name, value)| value.map(|v| (name.clone(), v)))
            .collect();
        Ok(Some((named, distance)))
    }
}

impl RankJoin<'_> {
    /// Accumulated statistics (including all input streams).
    pub fn stats(&self) -> EvalStats {
        let mut stats = self.stats;
        for input in &self.inputs {
            stats += input.stream.stats();
        }
        stats
    }

    /// Total bindings currently buffered across all inputs — the join's
    /// memory footprint, mirrored into the resource governor's
    /// `join_buffer_entries` gauge by the service layer.
    pub fn buffered_entries(&self) -> usize {
        self.inputs.iter().map(|input| input.buffer.len()).sum()
    }
}
#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted answer stream for unit-testing the join in isolation.
    struct Scripted {
        answers: Vec<ConjunctAnswer>,
        pos: usize,
    }

    impl Scripted {
        fn new(mut answers: Vec<(u32, u32, u32)>) -> Scripted {
            answers.sort_by_key(|&(_, _, d)| d);
            Scripted {
                answers: answers
                    .into_iter()
                    .map(|(x, y, d)| ConjunctAnswer {
                        x: NodeId(x),
                        y: NodeId(y),
                        distance: d,
                    })
                    .collect(),
                pos: 0,
            }
        }
    }

    impl AnswerStream for Scripted {
        fn next_answer(&mut self) -> Result<Option<ConjunctAnswer>> {
            let out = self.answers.get(self.pos).copied();
            self.pos += 1;
            Ok(out)
        }

        fn stats(&self) -> EvalStats {
            EvalStats::default()
        }
    }

    fn input(
        answers: Vec<(u32, u32, u32)>,
        subject: Option<&str>,
        object: Option<&str>,
    ) -> JoinInput<'static> {
        JoinInput::new(
            Box::new(Scripted::new(answers)),
            subject.map(str::to_owned),
            object.map(str::to_owned),
        )
    }

    fn binding(bindings: &Bindings, var: &str) -> u32 {
        bindings.iter().find(|(k, _)| k == var).unwrap().1 .0
    }

    #[test]
    fn joins_on_shared_variables() {
        // conjunct 1 binds (X, Y); conjunct 2 binds (Y, Z).
        let c1 = input(vec![(1, 10, 0), (2, 20, 0)], Some("X"), Some("Y"));
        let c2 = input(vec![(10, 100, 0), (30, 300, 0)], Some("Y"), Some("Z"));
        let mut join = RankJoin::new(vec![c1, c2]);
        let mut results = Vec::new();
        while let Some(r) = join.get_next().unwrap() {
            results.push(r);
        }
        assert_eq!(results.len(), 1);
        let (bindings, distance) = &results[0];
        assert_eq!(distance, &0);
        assert_eq!(binding(bindings, "X"), 1);
        assert_eq!(binding(bindings, "Y"), 10);
        assert_eq!(binding(bindings, "Z"), 100);
    }

    #[test]
    fn total_distance_is_summed_and_ordered() {
        let c1 = input(
            vec![(1, 10, 0), (1, 11, 1), (1, 12, 3)],
            Some("X"),
            Some("Y"),
        );
        let c2 = input(
            vec![(10, 100, 0), (11, 100, 0), (12, 100, 1)],
            Some("Y"),
            Some("Z"),
        );
        let mut join = RankJoin::new(vec![c1, c2]);
        let mut distances = Vec::new();
        while let Some((_, d)) = join.get_next().unwrap() {
            distances.push(d);
        }
        assert_eq!(distances, vec![0, 1, 4]);
    }

    #[test]
    fn cartesian_product_when_no_shared_variables() {
        let c1 = input(vec![(1, 10, 0), (2, 20, 1)], Some("X"), Some("Y"));
        let c2 = input(vec![(5, 50, 0)], Some("A"), Some("B"));
        let mut join = RankJoin::new(vec![c1, c2]);
        let mut count = 0;
        let mut last = 0;
        while let Some((_, d)) = join.get_next().unwrap() {
            assert!(d >= last);
            last = d;
            count += 1;
        }
        assert_eq!(count, 2);
    }

    #[test]
    fn conflicting_bindings_are_rejected() {
        // Both conjuncts bind X and Y but disagree on Y for x=1.
        let c1 = input(vec![(1, 10, 0)], Some("X"), Some("Y"));
        let c2 = input(vec![(1, 99, 0)], Some("X"), Some("Y"));
        let mut join = RankJoin::new(vec![c1, c2]);
        assert!(join.get_next().unwrap().is_none());
    }

    #[test]
    fn three_way_join() {
        let c1 = input(vec![(1, 2, 0)], Some("X"), Some("Y"));
        let c2 = input(vec![(2, 3, 1)], Some("Y"), Some("Z"));
        let c3 = input(vec![(3, 4, 2)], Some("Z"), Some("W"));
        let mut join = RankJoin::new(vec![c1, c2, c3]);
        let (bindings, distance) = join.get_next().unwrap().unwrap();
        assert_eq!(distance, 3);
        assert_eq!(bindings.len(), 4);
        assert!(join.get_next().unwrap().is_none());
    }

    #[test]
    fn duplicate_combinations_are_emitted_once() {
        // Two identical answers in stream 1 produce the same combined binding.
        let c1 = input(vec![(1, 10, 0), (1, 10, 2)], Some("X"), Some("Y"));
        let c2 = input(vec![(10, 100, 0)], Some("Y"), Some("Z"));
        let mut join = RankJoin::new(vec![c1, c2]);
        let mut results = Vec::new();
        while let Some(r) = join.get_next().unwrap() {
            results.push(r);
        }
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].1, 0, "the cheaper duplicate wins");
    }

    #[test]
    fn indexed_probing_matches_a_brute_force_join() {
        // Exercises every index shape at once: (X, Y) probes by subject
        // and/or object, (Y, Z) shares Y, (Z, Z) is a same-variable
        // conjunct (subject slot == object slot), and the result must equal
        // an independent nested-loop join.
        let c1_rows = vec![(1, 10, 0), (2, 20, 1), (1, 11, 2), (3, 10, 2)];
        let c2_rows = vec![(10, 5, 0), (11, 5, 1), (10, 6, 2), (20, 7, 3)];
        let c3_rows = vec![(5, 5, 0), (7, 7, 1), (6, 6, 4)];
        let c1 = input(c1_rows.clone(), Some("X"), Some("Y"));
        let c2 = input(c2_rows.clone(), Some("Y"), Some("Z"));
        let c3 = input(c3_rows.clone(), Some("Z"), Some("Z"));
        let mut join = RankJoin::new(vec![c1, c2, c3]);
        let mut got = Vec::new();
        while let Some((bindings, d)) = join.get_next().unwrap() {
            let mut bindings = bindings
                .into_iter()
                .map(|(k, v)| (k, v.0))
                .collect::<Vec<_>>();
            bindings.sort();
            got.push((d, bindings));
        }
        // Distances must be non-decreasing.
        assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));

        let mut expected = std::collections::BTreeSet::new();
        for &(x, y1, d1) in &c1_rows {
            for &(y2, z1, d2) in &c2_rows {
                for &(z2, z3, d3) in &c3_rows {
                    if y1 == y2 && z1 == z2 && z2 == z3 {
                        expected.insert((
                            d1 + d2 + d3,
                            vec![
                                ("X".to_owned(), x),
                                ("Y".to_owned(), y1),
                                ("Z".to_owned(), z1),
                            ],
                        ));
                    }
                }
            }
        }
        // The rank join deduplicates identical bindings (cheapest first), so
        // compare against the min-distance combination per binding set.
        let mut best: std::collections::BTreeMap<Vec<(String, u32)>, u32> =
            std::collections::BTreeMap::new();
        for (d, b) in expected {
            best.entry(b).or_insert(d);
        }
        let got_set: std::collections::BTreeMap<Vec<(String, u32)>, u32> =
            got.into_iter().map(|(d, b)| (b, d)).collect();
        assert_eq!(got_set, best);
    }

    #[test]
    fn top_k_capping_survives_duplicate_candidate_deflation() {
        // Duplicate candidates (same bindings, different distances — e.g. a
        // stream re-deriving one pair at a relaxed cost) consume top-k
        // tracker slots, so τ can undershoot the k-th *distinct* answer's
        // distance and every live stream can end up capped. The join must
        // then uncap and keep producing — bit-identically to an unlimited
        // join — rather than stall or emit out of order.
        let rows_a = vec![(1, 10, 0), (1, 10, 2), (2, 10, 3)];
        let rows_b = vec![(10, 100, 0), (10, 200, 40)];
        let run = |limit: Option<usize>, take: usize| {
            let a = input(rows_a.clone(), Some("X"), Some("Y"));
            let b = input(rows_b.clone(), Some("Y"), Some("Z"));
            let mut join = RankJoin::new(vec![a, b]);
            join.set_limit(limit);
            let mut out = Vec::new();
            while out.len() < take {
                match join.get_next().unwrap() {
                    Some((bindings, d)) => out.push((bindings, d)),
                    None => break,
                }
            }
            out
        };
        let reference = run(None, 4);
        assert_eq!(reference.len(), 4, "the uncapped join finds all answers");
        for k in 1..=4 {
            assert_eq!(
                run(Some(k), k),
                reference[..k],
                "limit {k} must emit the same top-{k} prefix"
            );
        }
        // And a caller that asks *past* its declared limit still gets the
        // full, ordered sequence (the uncap escape hatch).
        assert_eq!(run(Some(2), 4), reference);
    }

    #[test]
    fn constant_only_conjunct_contributes_distance_but_no_bindings() {
        // A conjunct with two constants acts as a filter: it binds nothing
        // but its (possibly positive) distance still counts.
        let c1 = input(vec![(1, 10, 0)], Some("X"), None);
        let filter = input(vec![(7, 8, 2)], None, None);
        let mut join = RankJoin::new(vec![c1, filter]);
        let (bindings, distance) = join.get_next().unwrap().unwrap();
        assert_eq!(distance, 2);
        assert_eq!(bindings.len(), 1);
    }
}
