//! Deterministic fault injection for the chaos test suite.
//!
//! A `FaultPlan` (present under `cfg(any(test, feature = "fault-injection"))`,
//! like everything that can actually fire) is a seeded, rate-controlled oracle deciding — purely as
//! a function of `(seed, injection point, per-point hit counter)` — whether
//! each pass through an instrumented code path fails. The same seed over the
//! same workload therefore replays the *same* schedule of failures, which is
//! what lets `tests/chaos.rs` commit seeds and assert exact recovery
//! behaviour instead of hoping a probabilistic test eventually trips the
//! interesting path.
//!
//! The instrumented points ([`FaultPoint`]) cover the failure classes a
//! serving deployment actually sees: snapshot IO reads, worker-thread
//! spawning, bounded-channel sends, budget acquisition, the deadline
//! clock, and write-ahead-log I/O (torn appends, failed fsyncs). Each hook compiles to a branch on an `AtomicPtr`-free global under
//! `cfg(any(test, feature = "fault-injection"))` and to a constant `false`
//! otherwise, so release library builds carry no chaos machinery at all.
//!
//! Installation is process-global (guarded, cleared on drop) because the
//! injected paths run on worker threads that only share `EvalOptions` —
//! chaos tests serialise on a mutex exactly like the concurrency suite.

/// A code path instrumented for fault injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// Reading/validating a snapshot image on open.
    SnapshotRead = 0,
    /// Dispatching a conjunct worker to the pool.
    WorkerSpawn = 1,
    /// A worker pushing an item into its bounded answer channel.
    ChannelSend = 2,
    /// A budget check / shared-pool tuple reservation.
    BudgetAcquire = 3,
    /// The wall-clock deadline check (simulates clock jumps).
    DeadlineClock = 4,
    /// Applying a mutation batch to the live graph (before the new epoch is
    /// published, so an injected failure leaves the graph unchanged).
    MutationApply = 5,
    /// Appending a mutation record to the write-ahead log. Firing damages
    /// the on-disk record (torn write) and fails the append, exercising the
    /// degrade-to-read-only path and tail truncation on recovery.
    WalAppend = 6,
    /// Fsyncing the write-ahead log: the record lands intact but the
    /// durability promise is broken (power loss before flush).
    WalSync = 7,
}

/// Number of distinct injection points.
pub const FAULT_POINTS: usize = 8;

/// Every injection point, for tests that sweep them.
pub const ALL_POINTS: [FaultPoint; FAULT_POINTS] = [
    FaultPoint::SnapshotRead,
    FaultPoint::WorkerSpawn,
    FaultPoint::ChannelSend,
    FaultPoint::BudgetAcquire,
    FaultPoint::DeadlineClock,
    FaultPoint::MutationApply,
    FaultPoint::WalAppend,
    FaultPoint::WalSync,
];

#[cfg(any(test, feature = "fault-injection"))]
mod active {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};

    use super::{FaultPoint, FAULT_POINTS};

    /// Fast-path flag mirroring "a plan is installed". The hooks sit on
    /// per-tuple cadences, so the common no-plan case must cost one relaxed
    /// load, not a global mutex acquisition.
    static INSTALLED: AtomicBool = AtomicBool::new(false);

    /// SplitMix64: a tiny, high-quality mixer — the decision function is
    /// `mix(seed ⊕ point ⊕ hit-counter) < rate threshold`, so every decision
    /// is independent of wall-clock time and thread scheduling *given* the
    /// per-point hit index.
    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A seeded schedule of injected faults.
    #[derive(Debug)]
    pub struct FaultPlan {
        seed: u64,
        /// Failure threshold: a decision fires when the mixed hash is below
        /// it. `u64::MAX` ≈ rate 1.0.
        threshold: u64,
        /// Per-point masks: a point only fires when enabled.
        enabled: [bool; FAULT_POINTS],
        /// Per-point hit counters (how often the point was consulted).
        hits: [AtomicU64; FAULT_POINTS],
        /// Per-point fire counters (how often it actually failed).
        fired: [AtomicU64; FAULT_POINTS],
    }

    impl FaultPlan {
        /// A plan failing each enabled point with probability `rate`
        /// (clamped to `[0, 1]`), deterministically in `seed`.
        pub fn new(seed: u64, rate: f64) -> FaultPlan {
            let rate = rate.clamp(0.0, 1.0);
            FaultPlan {
                seed,
                threshold: (rate * u64::MAX as f64) as u64,
                enabled: [true; FAULT_POINTS],
                hits: std::array::from_fn(|_| AtomicU64::new(0)),
                fired: std::array::from_fn(|_| AtomicU64::new(0)),
            }
        }

        /// Restricts the plan to a single injection point.
        pub fn only(mut self, point: FaultPoint) -> FaultPlan {
            self.enabled = [false; FAULT_POINTS];
            self.enabled[point as usize] = true;
            self
        }

        /// Whether this consultation of `point` fails.
        pub fn should_fail(&self, point: FaultPoint) -> bool {
            let idx = point as usize;
            if !self.enabled[idx] {
                return false;
            }
            let n = self.hits[idx].fetch_add(1, Ordering::Relaxed);
            let key = self.seed.wrapping_mul(0x2545_f491_4f6c_dd1d)
                ^ (idx as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ n;
            let fire = splitmix64(key) < self.threshold;
            if fire {
                self.fired[idx].fetch_add(1, Ordering::Relaxed);
            }
            fire
        }

        /// How many times `point` was consulted.
        pub fn hits(&self, point: FaultPoint) -> u64 {
            self.hits[point as usize].load(Ordering::Relaxed)
        }

        /// How many times `point` actually failed.
        pub fn fired(&self, point: FaultPoint) -> u64 {
            self.fired[point as usize].load(Ordering::Relaxed)
        }

        /// Total injected faults across all points.
        pub fn total_fired(&self) -> u64 {
            self.fired.iter().map(|c| c.load(Ordering::Relaxed)).sum()
        }
    }

    fn slot() -> &'static Mutex<Option<Arc<FaultPlan>>> {
        static SLOT: OnceLock<Mutex<Option<Arc<FaultPlan>>>> = OnceLock::new();
        SLOT.get_or_init(|| Mutex::new(None))
    }

    /// Clears the installed plan when dropped, bounding a chaos schedule to
    /// its test's scope even on assertion failure (unwind runs the drop).
    pub struct FaultGuard {
        _private: (),
    }

    impl Drop for FaultGuard {
        fn drop(&mut self) {
            *slot().lock().unwrap_or_else(|e| e.into_inner()) = None;
            INSTALLED.store(false, Ordering::SeqCst);
        }
    }

    /// Installs `plan` process-wide, returning a guard that uninstalls it.
    ///
    /// Chaos tests serialise on their own mutex; installing over an existing
    /// plan replaces it (last writer wins).
    pub fn install(plan: Arc<FaultPlan>) -> FaultGuard {
        *slot().lock().unwrap_or_else(|e| e.into_inner()) = Some(plan);
        INSTALLED.store(true, Ordering::SeqCst);
        FaultGuard { _private: () }
    }

    /// The installed plan, if any.
    pub fn current() -> Option<Arc<FaultPlan>> {
        slot().lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// The hook the instrumented paths call: `true` means "fail here now".
    ///
    /// Some hooks sit on per-tuple cadences, so with no plan installed this
    /// is one relaxed atomic load; the mutex is only taken while a chaos
    /// schedule is actually running.
    #[inline]
    pub fn fire(point: FaultPoint) -> bool {
        if !INSTALLED.load(Ordering::Relaxed) {
            return false;
        }
        current().is_some_and(|plan| plan.should_fail(point))
    }
}

#[cfg(any(test, feature = "fault-injection"))]
pub use active::{current, fire, install, FaultGuard, FaultPlan};

/// No-op twin compiled into non-instrumented builds: the hook is a constant
/// and the optimiser deletes the branch at every injection site.
#[cfg(not(any(test, feature = "fault-injection")))]
#[inline(always)]
pub fn fire(_point: FaultPoint) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn same_seed_replays_the_same_schedule() {
        let a = FaultPlan::new(42, 0.3);
        let b = FaultPlan::new(42, 0.3);
        let decisions_a: Vec<bool> = (0..256)
            .map(|_| a.should_fail(FaultPoint::ChannelSend))
            .collect();
        let decisions_b: Vec<bool> = (0..256)
            .map(|_| b.should_fail(FaultPoint::ChannelSend))
            .collect();
        assert_eq!(decisions_a, decisions_b);
        assert!(a.total_fired() > 0, "rate 0.3 over 256 draws fires");
        assert!(
            a.fired(FaultPoint::ChannelSend) < 256,
            "rate 0.3 is not rate 1.0"
        );
    }

    #[test]
    fn different_seeds_differ_and_points_are_independent() {
        let a = FaultPlan::new(1, 0.5);
        let b = FaultPlan::new(2, 0.5);
        let da: Vec<bool> = (0..128)
            .map(|_| a.should_fail(FaultPoint::BudgetAcquire))
            .collect();
        let db: Vec<bool> = (0..128)
            .map(|_| b.should_fail(FaultPoint::BudgetAcquire))
            .collect();
        assert_ne!(da, db, "seeds must produce distinct schedules");
        // A disabled point never fires even at rate 1.
        let only = FaultPlan::new(7, 1.0).only(FaultPoint::WorkerSpawn);
        assert!(!only.should_fail(FaultPoint::SnapshotRead));
        assert!(only.should_fail(FaultPoint::WorkerSpawn));
    }

    #[test]
    fn rates_zero_and_one_are_exact() {
        let never = FaultPlan::new(9, 0.0);
        let always = FaultPlan::new(9, 1.0);
        for point in ALL_POINTS {
            for _ in 0..32 {
                assert!(!never.should_fail(point));
                assert!(always.should_fail(point));
            }
        }
    }

    #[test]
    fn install_guard_scopes_the_plan() {
        // Unit tests share the process with concurrently running sibling
        // tests, so this installs a rate-0 plan: globally inert, but the
        // hit counters still prove the hooks consulted it.
        let plan = Arc::new(FaultPlan::new(3, 0.0));
        {
            let _guard = install(Arc::clone(&plan));
            assert!(current().is_some());
            assert!(!fire(FaultPoint::DeadlineClock), "rate 0 never fires");
        }
        assert!(plan.hits(FaultPoint::DeadlineClock) >= 1, "hook consulted");
        assert!(current().is_none(), "guard uninstalls on drop");
        assert!(!fire(FaultPoint::DeadlineClock));
    }
}
