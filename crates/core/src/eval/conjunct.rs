//! The single-conjunct ranked evaluator — the paper's `GetNext` procedure
//! over the lazily constructed weighted product automaton `H_R`.

use std::sync::Arc;
use std::time::Instant;

use omega_graph::GraphStore;
use omega_ontology::Ontology;

use omega_automata::MinCostToAccept;

use crate::answer::ConjunctAnswer;
use crate::error::{OmegaError, Result};
use crate::eval::dr::DrQueue;
use crate::eval::fault::{fire as fault_fire, FaultPoint};
use crate::eval::initial::InitialNodeFeed;
use crate::eval::options::{EvalOptions, OverloadPolicy};
use crate::eval::plan::ConjunctPlan;
use crate::eval::stats::{EvalStats, TruncationReason};
use crate::eval::succ::{succ, CostFilter, SuccScratch, SuccTransition};
use crate::eval::tuple::Tuple;
use crate::eval::visited::{PairSet, VisitedSet};
use crate::eval::AnswerStream;
use crate::govern::TupleReservation;
use crate::query::ast::Term;

/// Ranked, incremental evaluation of one compiled conjunct.
///
/// Answers are produced in non-decreasing distance order. The evaluator is a
/// pull-based iterator: nothing beyond what is needed for the next answer is
/// computed, and the initial-node feed is drained in batches only when the
/// distance-0 frontier empties (Section 3.3 / 3.4 of the paper).
///
/// ## Cost-guided mode
///
/// With [`EvalOptions::cost_guided`] on (the default), the queue is keyed by
/// `f = g + h[state]` where `h` is the plan's admissible per-state accept
/// lower bound ([`ConjunctPlan::bounds`]); tuples whose state is dead or
/// whose `f` provably exceeds the distance ceiling are pruned; and each
/// tuple's positive-cost successors (wildcard edits, relaxations) are
/// *deferred*: the fresh pop expands only the 0-cost skeleton, and a
/// placeholder re-queued at `g + defer_delta[state]` materialises the rest
/// only once the cursor reaches the first key at which any of them could
/// matter. Since `h` is admissible and consistent, answers still arrive in
/// non-decreasing final distance with exactly the same per-distance answer
/// sets as plain `g`-ordered evaluation — a top-`k` run that stops early
/// simply never pays for the flexible frontier beyond the `k`-th distance
/// (see the module tests and `tests/prop_end_to_end.rs`). Only the relative
/// order of answers *within* one distance (and the work counters) may
/// differ between the two orderings.
pub struct ConjunctEvaluator<'a> {
    graph: &'a GraphStore,
    ontology: &'a Ontology,
    /// The compiled plan, shared with the prepared query (and, for the
    /// escalating drivers, across restarts) instead of cloned per run.
    plan: Arc<ConjunctPlan>,
    /// Shared evaluation options: one `Arc` per request, not one clone per
    /// evaluator.
    options: Arc<EvalOptions>,
    /// Distance ceiling ψ for distance-aware evaluation (`None` = unbounded).
    psi: Option<u32>,
    /// Whether cost-guided evaluation (f-ordering, pruning, deferral) is on.
    cost_guided: bool,
    /// The key fresh seeds enter the queue at (`h(initial)`; 0 when not
    /// cost-guided). The next seed batch is due only once no work at or
    /// below this key remains — with f-keys, gating on key 0 alone would
    /// leave the gate permanently open whenever `h(initial) > 0` and flood
    /// the whole feed in.
    seed_key_floor: u32,
    /// Loop counter used to pace the wall-clock deadline checks.
    ticks: u64,
    dr: DrQueue,
    /// Packed-key / dense-bitmap membership over `(start, node, state)`.
    visited: VisitedSet,
    /// The paper's `answers_R`, keyed on the raw `(v, n)` pair.
    answers_seen: PairSet,
    /// Deduplication of *emitted* answers on their normalised bindings
    /// (relevant when RELAX seeds several class ancestors for one constant).
    emitted: PairSet,
    feed: InitialNodeFeed,
    /// Reusable output buffer for `Succ` expansions.
    succ_out: Vec<SuccTransition>,
    /// Reusable scratch for neighbour-set computation.
    scratch: SuccScratch,
    /// This evaluator's chunked claim on the database-wide tuple pool (when
    /// a governor handle is installed); releases on drop.
    reservation: Option<TupleReservation>,
    /// Why the most recent budget trip happened, captured at the trip site
    /// so the degrade wrapper can record it.
    trip_reason: Option<TruncationReason>,
    /// Set once graceful degradation has ended this stream: every further
    /// `get_next` returns `Ok(None)` instead of resuming the traversal.
    degraded: bool,
    stats: EvalStats,
}

impl<'a> ConjunctEvaluator<'a> {
    /// Creates an evaluator for `plan` with an optional distance ceiling.
    ///
    /// The ceiling is the tighter of `psi` (the escalating drivers' bound)
    /// and the request's `max_distance`.
    pub fn new(
        plan: Arc<ConjunctPlan>,
        graph: &'a GraphStore,
        ontology: &'a Ontology,
        options: Arc<EvalOptions>,
        psi: Option<u32>,
    ) -> ConjunctEvaluator<'a> {
        let psi = match (psi, options.max_distance) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let feed = InitialNodeFeed::new(&plan, graph, ontology, options.batch_size);
        let dr = DrQueue::new(options.prioritize_final);
        let visited = VisitedSet::new(graph.node_count(), plan.nfa.state_count(), &plan.seeds);
        let cost_guided = options.cost_guided;
        let seed_key_floor = if cost_guided {
            match plan.bounds.get(plan.nfa.initial()) {
                // A dead initial state prunes every seed anyway; keep the
                // gate at 0 so the feed still drains promptly.
                MinCostToAccept::DEAD => 0,
                h => h,
            }
        } else {
            0
        };
        let reservation = options.govern.as_ref().map(|h| h.reservation());
        ConjunctEvaluator {
            graph,
            ontology,
            plan,
            options,
            psi,
            cost_guided,
            seed_key_floor,
            ticks: 0,
            dr,
            visited,
            answers_seen: PairSet::new(),
            emitted: PairSet::new(),
            feed,
            succ_out: Vec::new(),
            scratch: SuccScratch::new(),
            reservation,
            trip_reason: None,
            degraded: false,
            stats: EvalStats::default(),
        }
    }

    /// The compiled plan driving this evaluator.
    pub fn plan(&self) -> &ConjunctPlan {
        &self.plan
    }

    /// Number of tuples suppressed by the ψ ceiling so far; a non-zero value
    /// means answers may exist beyond the ceiling.
    pub fn suppressed(&self) -> u64 {
        self.stats.suppressed
    }

    fn add_tuple(&mut self, tuple: Tuple) -> Result<()> {
        let mut key = tuple.distance;
        if !tuple.is_final && self.cost_guided {
            let h = self.plan.bounds.get(tuple.state);
            // A dead state can never reach acceptance on this graph: the
            // tuple is dropped outright (it is *not* `suppressed` — no
            // ceiling escalation can ever recover an answer from it).
            if h == MinCostToAccept::DEAD {
                self.stats.pruned_dead += 1;
                return Ok(());
            }
            key = tuple.distance.saturating_add(h);
        }
        if let Some(psi) = self.psi {
            if tuple.distance > psi {
                self.stats.suppressed += 1;
                return Ok(());
            }
            // Admissible bound pruning: every answer derived from this
            // tuple has final distance ≥ g + h, so beyond ψ it cannot
            // contribute under the current ceiling (but might after an
            // escalation — hence also `suppressed`).
            if key > psi {
                self.stats.suppressed += 1;
                self.stats.pruned_bound += 1;
                return Ok(());
            }
        }
        self.dr.push(tuple, key);
        self.stats.tuples_added += 1;
        self.check_budget()
    }

    /// Enqueues the deferred positive-cost expansion of a just-visited
    /// tuple, keyed at the first point any of its successors could matter.
    fn add_deferred(&mut self, tuple: &Tuple) -> Result<()> {
        let delta = self.plan.defer_delta(tuple.state);
        if delta == u32::MAX {
            return Ok(()); // no live positive-cost transitions
        }
        let key = tuple.distance.saturating_add(delta);
        if let Some(psi) = self.psi {
            if key > psi {
                // Every deferred successor has g + h ≥ key > ψ: prunable
                // now, possibly relevant after an escalation.
                self.stats.suppressed += 1;
                self.stats.pruned_bound += 1;
                return Ok(());
            }
        }
        self.dr.push(
            Tuple {
                deferred: true,
                ..*tuple
            },
            key,
        );
        self.check_budget()
    }

    fn check_budget(&mut self) -> Result<()> {
        let live = self.dr.len() + self.visited.len();
        if fault_fire(FaultPoint::BudgetAcquire) {
            self.trip_reason = Some(TruncationReason::PoolExhausted);
            return Err(OmegaError::ResourceExhausted { tuples: live });
        }
        if let Some(max) = self.options.max_tuples {
            if live > max {
                self.trip_reason = Some(TruncationReason::TupleBudget);
                return Err(OmegaError::ResourceExhausted { tuples: live });
            }
        }
        if let Some(reservation) = &mut self.reservation {
            // Grow this evaluator's claim on the shared pool to cover its
            // live occupancy; a refusal (pool saturated beyond the bounded
            // backoff) trips exactly like an exceeded per-query budget.
            if !reservation.covers(live) {
                self.trip_reason = Some(TruncationReason::PoolExhausted);
                return Err(OmegaError::ResourceExhausted { tuples: live });
            }
        }
        Ok(())
    }

    fn refill_initial(&mut self) -> Result<bool> {
        if !self.feed.has_more() {
            return Ok(false);
        }
        let initial = self.plan.nfa.initial();
        let batch = self.feed.next_batch(initial);
        let added = !batch.is_empty();
        for tuple in batch {
            self.add_tuple(tuple)?;
        }
        Ok(added)
    }

    /// Whether the final-state annotation accepts `node` (the constant-object
    /// constraint and the `(?X, R, ?X)` same-variable constraint).
    fn final_annotation_matches(&self, tuple: &Tuple) -> bool {
        if let Some(required) = self.plan.final_constraint {
            if tuple.node != required {
                return false;
            }
        }
        if self.plan.require_equal_endpoints && tuple.node != tuple.start {
            return false;
        }
        true
    }

    /// Normalises a final tuple into a [`ConjunctAnswer`], deduplicating on
    /// the normalised bindings. Returns `None` for duplicates.
    fn make_answer(&mut self, tuple: Tuple) -> Option<ConjunctAnswer> {
        let (mut x, mut y) = if self.plan.reversed {
            (tuple.node, tuple.start)
        } else {
            (tuple.start, tuple.node)
        };
        // Constants keep their original binding even when evaluation started
        // from a relaxed ancestor class.
        if self.plan.subject.as_constant().is_some() {
            if let Some(node) = self.plan.subject_node {
                x = node;
            }
        }
        if self.plan.object.as_constant().is_some() {
            if let Some(node) = self.plan.object_node {
                y = node;
            }
        }
        if !self.emitted.insert(x, y) {
            return None;
        }
        Some(ConjunctAnswer {
            x,
            y,
            distance: tuple.distance,
        })
    }

    /// The paper's `GetNext`: the next answer in non-decreasing distance
    /// order, or `Ok(None)` when evaluation is complete.
    ///
    /// Under [`OverloadPolicy::Degrade`] / [`OverloadPolicy::Shed`], a
    /// tripped resource budget (per-query `max_tuples` or the governor's
    /// shared pool) ends the stream cleanly instead of erroring: every
    /// answer already emitted has rank strictly below the evaluation
    /// frontier, so the yielded set is bit-identical to a prefix of the
    /// uncapped run. The truncation is recorded in the stats (`degraded`,
    /// `truncation`).
    pub fn get_next(&mut self) -> Result<Option<ConjunctAnswer>> {
        if self.degraded {
            return Ok(None);
        }
        match self.get_next_inner() {
            Err(OmegaError::ResourceExhausted { .. })
                if self.options.on_overload != OverloadPolicy::Fail =>
            {
                self.degraded = true;
                self.stats.degraded = true;
                self.stats.truncation = Some(
                    self.trip_reason
                        .take()
                        .unwrap_or(TruncationReason::TupleBudget),
                );
                Ok(None)
            }
            other => other,
        }
    }

    fn get_next_inner(&mut self) -> Result<Option<ConjunctAnswer>> {
        loop {
            // Deadline and cancellation checks, paced to one clock read /
            // atomic load per 64 tuples; the first iteration always checks so
            // a 0-ms deadline (or pre-cancelled token) fails fast. This
            // cadence is the bound on how long a worker deep inside a
            // traversal can outlive its execution.
            if self.ticks & 63 == 0 {
                if let Some(deadline) = self.options.deadline {
                    // The fault hook models a clock jumping past the
                    // deadline (NTP step, VM pause): the evaluator must
                    // treat it exactly like a genuinely expired deadline.
                    if Instant::now() >= deadline || fault_fire(FaultPoint::DeadlineClock) {
                        return Err(OmegaError::DeadlineExceeded);
                    }
                }
                if let Some(cancel) = &self.options.cancel {
                    if cancel.is_cancelled() {
                        return Err(OmegaError::Cancelled);
                    }
                }
            }
            self.ticks = self.ticks.wrapping_add(1);
            // Incrementally add the next batch of initial nodes when the
            // frontier at the seeds' entry key has been consumed (lines
            // 15–17; seeds enter at key `h(initial)`, which is 0 without
            // cost guidance). Performing the refill before every pop keeps
            // the queue's minimum key a true global minimum: unreleased
            // seeds can only enter at keys the cursor has not passed.
            if self.feed.has_more() && !self.dr.has_key_at_most(self.seed_key_floor) {
                self.refill_initial()?;
            }
            let Some(tuple) = self.dr.pop() else {
                if self.refill_initial()? {
                    continue;
                }
                return Ok(None);
            };
            self.stats.tuples_processed += 1;

            if tuple.is_final {
                if self.answers_seen.insert(tuple.start, tuple.node) {
                    if let Some(answer) = self.make_answer(tuple) {
                        self.stats.answers += 1;
                        return Ok(Some(answer));
                    }
                }
                continue;
            }

            if tuple.deferred {
                // The postponed positive-cost expansion of an already
                // visited tuple: the cursor has reached the first key at
                // which any of its wildcard/edit/relaxation successors can
                // matter. No visited insert and no final enqueue — the
                // fresh pop already did both.
                self.stats.deferred_expansions += 1;
                self.expand(&tuple, CostFilter::PositiveOnly)?;
                continue;
            }

            if !self.visited.insert(tuple.start, tuple.node, tuple.state.0) {
                continue;
            }
            if self.cost_guided {
                // Fresh pop: only the 0-cost skeleton successors enter the
                // queue now; everything with positive cost is represented by
                // one deferred placeholder until the cursor needs it.
                self.expand(&tuple, CostFilter::ZeroOnly)?;
                self.add_deferred(&tuple)?;
            } else {
                self.expand(&tuple, CostFilter::All)?;
            }
            // Enqueue a pending answer when the state is final (lines 12–13).
            if let Some(weight) = self.plan.nfa.final_weight(tuple.state) {
                if self.final_annotation_matches(&tuple)
                    && !self.answers_seen.contains(tuple.start, tuple.node)
                {
                    self.add_tuple(Tuple {
                        is_final: true,
                        distance: tuple.distance + weight,
                        ..tuple
                    })?;
                }
            }
        }
    }

    /// Expands `tuple` through the product automaton (lines 10–11 of the
    /// paper's `GetNext`), pushing the successors `filter` admits.
    fn expand(&mut self, tuple: &Tuple, filter: CostFilter) -> Result<()> {
        // The output buffer is moved out for the duration of the push loop
        // so that `add_tuple` can borrow `self` mutably; its capacity is
        // kept.
        let mut transitions = std::mem::take(&mut self.succ_out);
        succ(
            self.graph,
            self.ontology,
            self.plan.inference,
            &self.plan.nfa,
            tuple.state,
            tuple.node,
            filter,
            self.cost_guided.then_some(&self.plan.bounds),
            &mut transitions,
            &mut self.scratch,
            &mut self.stats,
        );
        let mut push_result = Ok(());
        for t in &transitions {
            if !self.visited.contains(tuple.start, t.node, t.state.0) {
                push_result = self.add_tuple(Tuple {
                    start: tuple.start,
                    node: t.node,
                    state: t.state,
                    distance: tuple.distance + t.cost,
                    is_final: false,
                    deferred: false,
                });
                if push_result.is_err() {
                    break;
                }
            }
        }
        self.succ_out = transitions;
        push_result
    }

    /// Runs the evaluator to completion (or until `limit` answers), returning
    /// the collected answers.
    pub fn collect(&mut self, limit: Option<usize>) -> Result<Vec<ConjunctAnswer>> {
        let mut out = Vec::new();
        while limit.is_none_or(|l| out.len() < l) {
            match self.get_next()? {
                Some(answer) => out.push(answer),
                None => break,
            }
        }
        Ok(out)
    }
}

impl AnswerStream for ConjunctEvaluator<'_> {
    fn next_answer(&mut self) -> Result<Option<ConjunctAnswer>> {
        self.get_next()
    }

    fn stats(&self) -> EvalStats {
        self.stats
    }
}

/// Compiles and evaluates a conjunct in one call — the common path for
/// single-conjunct queries without the escalating drivers.
pub fn evaluate_conjunct<'a>(
    conjunct: &crate::query::ast::Conjunct,
    graph: &'a GraphStore,
    ontology: &'a Ontology,
    options: &EvalOptions,
) -> Result<ConjunctEvaluator<'a>> {
    let plan = crate::eval::plan::compile_conjunct(conjunct, graph, ontology, options)?;
    Ok(ConjunctEvaluator::new(
        Arc::new(plan),
        graph,
        ontology,
        Arc::new(options.clone()),
        None,
    ))
}

/// Convenience used by tests and benches: projected bindings as strings.
pub fn answer_labels(
    graph: &GraphStore,
    plan: &ConjunctPlan,
    answer: &ConjunctAnswer,
) -> Vec<(String, String)> {
    let mut out = Vec::new();
    if let Term::Variable(v) = &plan.subject {
        out.push((v.clone(), graph.node_label(answer.x).to_owned()));
    }
    if let Term::Variable(v) = &plan.object {
        if !out.iter().any(|(name, _)| name == v) {
            out.push((v.clone(), graph.node_label(answer.y).to_owned()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::ast::QueryMode;
    use crate::query::parser::parse_query;

    /// A small social/typed graph exercising forward and reverse traversal,
    /// type edges and a two-level ontology.
    fn setup() -> (GraphStore, Ontology) {
        let mut g = GraphStore::new();
        g.add_triple("alice", "knows", "bob");
        g.add_triple("bob", "knows", "carol");
        g.add_triple("carol", "knows", "dave");
        g.add_triple("alice", "worksAt", "acme");
        g.add_triple("bob", "worksAt", "acme");
        g.add_triple("alice", "type", "Student");
        g.add_triple("bob", "type", "Person");
        g.add_triple("carol", "type", "Student");
        let mut o = Ontology::new();
        let student = g.node_by_label("Student").unwrap();
        let person = g.node_by_label("Person").unwrap();
        o.add_subclass(student, person).unwrap();
        let knows = g.label_id("knows").unwrap();
        let related = g.intern_label("related");
        o.add_subproperty(knows, related).unwrap();
        (g, o)
    }

    fn run(query: &str, graph: &GraphStore, ontology: &Ontology) -> Vec<ConjunctAnswer> {
        run_with(query, graph, ontology, &EvalOptions::default())
    }

    fn run_with(
        query: &str,
        graph: &GraphStore,
        ontology: &Ontology,
        options: &EvalOptions,
    ) -> Vec<ConjunctAnswer> {
        let q = parse_query(query).unwrap();
        let mut eval = evaluate_conjunct(&q.conjuncts[0], graph, ontology, options).unwrap();
        eval.collect(None).unwrap()
    }

    fn labels(graph: &GraphStore, answers: &[ConjunctAnswer]) -> Vec<(String, String, u32)> {
        answers
            .iter()
            .map(|a| {
                (
                    graph.node_label(a.x).to_owned(),
                    graph.node_label(a.y).to_owned(),
                    a.distance,
                )
            })
            .collect()
    }

    #[test]
    fn exact_constant_to_variable() {
        let (g, o) = setup();
        let answers = run("(?X) <- (alice, knows, ?X)", &g, &o);
        assert_eq!(
            labels(&g, &answers),
            vec![("alice".into(), "bob".into(), 0)]
        );
    }

    #[test]
    fn exact_path_expression() {
        let (g, o) = setup();
        let answers = run("(?X) <- (alice, knows.knows, ?X)", &g, &o);
        assert_eq!(
            labels(&g, &answers),
            vec![("alice".into(), "carol".into(), 0)]
        );
    }

    #[test]
    fn exact_transitive_closure() {
        let (g, o) = setup();
        let answers = run("(?X) <- (alice, knows+, ?X)", &g, &o);
        let ys: Vec<String> = answers.iter().map(|a| g.node_label(a.y).into()).collect();
        assert_eq!(ys.len(), 3);
        assert!(ys.contains(&"bob".to_owned()));
        assert!(ys.contains(&"carol".to_owned()));
        assert!(ys.contains(&"dave".to_owned()));
        assert!(answers.iter().all(|a| a.distance == 0));
    }

    #[test]
    fn reverse_traversal() {
        let (g, o) = setup();
        let answers = run("(?X) <- (acme, worksAt-, ?X)", &g, &o);
        let ys: Vec<String> = answers.iter().map(|a| g.node_label(a.y).into()).collect();
        assert_eq!(ys.len(), 2);
        assert!(ys.contains(&"alice".to_owned()) && ys.contains(&"bob".to_owned()));
    }

    #[test]
    fn constant_object_is_reversed_and_bindings_unswapped() {
        let (g, o) = setup();
        let answers = run("(?X) <- (?X, knows, carol)", &g, &o);
        assert_eq!(
            labels(&g, &answers),
            vec![("bob".into(), "carol".into(), 0)]
        );
    }

    #[test]
    fn both_constants_check_reachability() {
        let (g, o) = setup();
        let hit = run(
            "(?X) <- (alice, knows+, ?X), (alice, knows.knows, carol)",
            &g,
            &o,
        );
        assert!(!hit.is_empty());
        let q = parse_query("(?X) <- (alice, knows+, ?X), (alice, knows, dave)").unwrap();
        let mut eval = evaluate_conjunct(&q.conjuncts[1], &g, &o, &EvalOptions::default()).unwrap();
        assert!(eval.collect(None).unwrap().is_empty());
    }

    #[test]
    fn variable_variable_conjunct() {
        let (g, o) = setup();
        let answers = run("(?X, ?Y) <- (?X, worksAt, ?Y)", &g, &o);
        assert_eq!(answers.len(), 2);
        assert!(answers
            .iter()
            .all(|a| g.node_label(a.y) == "acme" && a.distance == 0));
    }

    #[test]
    fn variable_variable_with_star_includes_identity_pairs() {
        let (g, o) = setup();
        let answers = run("(?X, ?Y) <- (?X, knows*, ?Y)", &g, &o);
        // every node pairs with itself (9 nodes) plus the 6 proper knows-paths
        let identity = answers.iter().filter(|a| a.x == a.y).count();
        assert_eq!(identity, g.node_count());
        let proper = answers.iter().filter(|a| a.x != a.y).count();
        assert_eq!(proper, 6); // alice->{bob,carol,dave}, bob->{carol,dave}, carol->dave
    }

    #[test]
    fn same_variable_requires_cycles() {
        let (g, o) = setup();
        // no knows-cycles in the graph
        let answers = run("(?X) <- (?X, knows+, ?X)", &g, &o);
        assert!(answers.is_empty());
        // add a cycle and try again
        let mut g2 = g.clone();
        g2.add_triple("dave", "knows", "alice");
        let answers = run("(?X) <- (?X, knows+, ?X)", &g2, &o);
        assert_eq!(answers.len(), 4, "every node on the cycle loops to itself");
        assert!(answers.iter().all(|a| a.x == a.y));
    }

    #[test]
    fn answers_arrive_in_nondecreasing_distance() {
        let (g, o) = setup();
        let answers = run("(?X) <- APPROX (alice, knows.knows, ?X)", &g, &o);
        let distances: Vec<u32> = answers.iter().map(|a| a.distance).collect();
        let mut sorted = distances.clone();
        sorted.sort_unstable();
        assert_eq!(distances, sorted);
        assert!(!answers.is_empty());
    }

    #[test]
    fn approx_finds_answers_where_exact_finds_none() {
        let (g, o) = setup();
        // `knows` spelled with the wrong direction: no exact answers, but
        // APPROX recovers carol's acquaintances via substitution at cost 1.
        let exact = run("(?X) <- (carol, knows-.knows-, ?X)", &g, &o);
        assert_eq!(exact.len(), 1); // only alice via the genuinely reversed path
        let approx = run("(?X) <- APPROX (carol, knows-.knows-, ?X)", &g, &o);
        assert!(approx.len() > exact.len());
        assert_eq!(approx[0].distance, 0, "exact answers come first");
        assert!(approx
            .iter()
            .skip(1)
            .all(|a| a.distance >= approx[0].distance));
    }

    #[test]
    fn approx_distance_reflects_number_of_edits() {
        let (g, o) = setup();
        // alice --knows--> bob: matching `worksAt.worksAt` against it needs
        // one substitution and one deletion.
        let answers = run("(?X) <- APPROX (alice, worksAt.worksAt.type, ?X)", &g, &o);
        let to_student = answers
            .iter()
            .find(|a| g.node_label(a.y) == "Student")
            .expect("Student reachable via type after two edits");
        assert!(to_student.distance >= 1);
    }

    #[test]
    fn relax_class_constant_climbs_the_hierarchy() {
        let (g, o) = setup();
        // Exactly: only alice and carol are typed Student.
        let exact = run("(?X) <- (Student, type-, ?X)", &g, &o);
        assert_eq!(exact.len(), 2);
        // RELAX Person: direct Person instances at distance 0, Students by
        // inference at distance 0, nothing else.
        let relax_person = run("(?X) <- RELAX (Person, type-, ?X)", &g, &o);
        assert_eq!(relax_person.len(), 3);
        // RELAX Student: Students at 0, then Person instances at distance 1
        // (one step up the class hierarchy).
        let relax_student = run("(?X) <- RELAX (Student, type-, ?X)", &g, &o);
        assert_eq!(relax_student.len(), 3);
        let bob = relax_student
            .iter()
            .find(|a| g.node_label(a.y) == "bob")
            .unwrap();
        assert_eq!(bob.distance, 1);
        assert_eq!(relax_student.iter().filter(|a| a.distance == 0).count(), 2);
    }

    #[test]
    fn relax_superproperty_matches_subproperty_edges() {
        let (g, o) = setup();
        // `related` has no edges of its own; under RELAX its subproperty
        // `knows` matches by inference at distance 0.
        let exact = run("(?X) <- (alice, related, ?X)", &g, &o);
        assert!(exact.is_empty());
        let relaxed = run("(?X) <- RELAX (alice, related, ?X)", &g, &o);
        assert_eq!(
            labels(&g, &relaxed),
            vec![("alice".into(), "bob".into(), 0)]
        );
    }

    #[test]
    fn relax_subproperty_reaches_superproperty_at_cost_beta() {
        let (mut g, o) = setup();
        // add an edge labelled `related` (the superproperty) directly
        g.add_triple("alice", "related", "eve");
        let relaxed = run("(?X) <- RELAX (alice, knows, ?X)", &g, &o);
        let eve = relaxed.iter().find(|a| g.node_label(a.y) == "eve").unwrap();
        assert_eq!(eve.distance, 1, "reached via the superproperty at cost β");
        let bob = relaxed.iter().find(|a| g.node_label(a.y) == "bob").unwrap();
        assert_eq!(bob.distance, 0);
    }

    #[test]
    fn resource_budget_aborts_evaluation() {
        let (g, o) = setup();
        let options = EvalOptions::default().with_max_tuples(Some(3));
        let q = parse_query("(?X, ?Y) <- APPROX (?X, knows+, ?Y)").unwrap();
        let mut eval = evaluate_conjunct(&q.conjuncts[0], &g, &o, &options).unwrap();
        let mut result = Ok(None);
        for _ in 0..1000 {
            result = eval.get_next();
            if result.is_err() {
                break;
            }
        }
        assert!(matches!(result, Err(OmegaError::ResourceExhausted { .. })));
    }

    #[test]
    fn psi_ceiling_limits_distances_and_counts_suppressed() {
        let (g, o) = setup();
        let q = parse_query("(?X) <- APPROX (alice, worksAt.worksAt, ?X)").unwrap();
        let plan =
            crate::eval::plan::compile_conjunct(&q.conjuncts[0], &g, &o, &EvalOptions::default())
                .unwrap();
        let mut bounded = ConjunctEvaluator::new(
            Arc::new(plan),
            &g,
            &o,
            Arc::new(EvalOptions::default()),
            Some(0),
        );
        let answers = bounded.collect(None).unwrap();
        assert!(answers.iter().all(|a| a.distance == 0));
        assert!(bounded.suppressed() > 0, "some tuples lie beyond ψ = 0");
    }

    #[test]
    fn deadline_in_the_past_aborts_immediately() {
        let (g, o) = setup();
        let options = EvalOptions::default().with_deadline(Some(Instant::now()));
        let q = parse_query("(?X, ?Y) <- APPROX (?X, knows+, ?Y)").unwrap();
        let mut eval = evaluate_conjunct(&q.conjuncts[0], &g, &o, &options).unwrap();
        assert!(matches!(eval.get_next(), Err(OmegaError::DeadlineExceeded)));
    }

    #[test]
    fn far_deadline_does_not_disturb_evaluation() {
        let (g, o) = setup();
        let deadline = Instant::now() + std::time::Duration::from_secs(3600);
        let with = run_with(
            "(?X) <- APPROX (alice, knows.knows, ?X)",
            &g,
            &o,
            &EvalOptions::default().with_deadline(Some(deadline)),
        );
        let without = run("(?X) <- APPROX (alice, knows.knows, ?X)", &g, &o);
        assert_eq!(with.len(), without.len());
    }

    #[test]
    fn max_distance_caps_answer_distances() {
        let (g, o) = setup();
        let unbounded = run("(?X) <- APPROX (alice, worksAt.worksAt, ?X)", &g, &o);
        assert!(unbounded.iter().any(|a| a.distance > 1));
        let bounded = run_with(
            "(?X) <- APPROX (alice, worksAt.worksAt, ?X)",
            &g,
            &o,
            &EvalOptions::default().with_max_distance(Some(1)),
        );
        assert!(bounded.iter().all(|a| a.distance <= 1));
        let expected: Vec<_> = unbounded.iter().filter(|a| a.distance <= 1).collect();
        assert_eq!(bounded.len(), expected.len());
    }

    #[test]
    fn batch_size_one_still_finds_all_answers() {
        let (g, o) = setup();
        let default_answers = run("(?X, ?Y) <- (?X, knows+, ?Y)", &g, &o);
        let small_batches = run_with(
            "(?X, ?Y) <- (?X, knows+, ?Y)",
            &g,
            &o,
            &EvalOptions::default().with_batch_size(1),
        );
        let key = |answers: &[ConjunctAnswer]| {
            let mut v: Vec<_> = answers.iter().map(|a| (a.x, a.y, a.distance)).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(key(&default_answers), key(&small_batches));
    }

    #[test]
    fn final_prioritisation_off_is_still_correct() {
        let (g, o) = setup();
        let with = run("(?X) <- APPROX (alice, knows.knows, ?X)", &g, &o);
        let without = run_with(
            "(?X) <- APPROX (alice, knows.knows, ?X)",
            &g,
            &o,
            &EvalOptions::default().without_final_prioritization(),
        );
        let key = |answers: &[ConjunctAnswer]| {
            let mut v: Vec<_> = answers.iter().map(|a| (a.x, a.y, a.distance)).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(key(&with), key(&without));
    }

    #[test]
    fn stats_are_populated() {
        let (g, o) = setup();
        let q = parse_query("(?X) <- (alice, knows+, ?X)").unwrap();
        let mut eval = evaluate_conjunct(&q.conjuncts[0], &g, &o, &EvalOptions::default()).unwrap();
        let _ = eval.collect(None).unwrap();
        let stats = eval.stats();
        assert!(stats.tuples_added > 0);
        assert!(stats.tuples_processed > 0);
        assert!(stats.succ_calls > 0);
        assert_eq!(stats.answers, 3);
    }

    #[test]
    fn dead_states_kill_ghost_label_queries_outright() {
        let (g, o) = setup();
        // `ghost` labels no edge: the exact automaton's every state is dead
        // against this graph, so cost-guided evaluation prunes the seeds
        // before any expansion.
        let q = parse_query("(?X) <- (alice, knows.ghost.knows, ?X)").unwrap();
        let options = EvalOptions::default().with_cost_guided(true);
        let mut eval = evaluate_conjunct(&q.conjuncts[0], &g, &o, &options).unwrap();
        assert!(eval.collect(None).unwrap().is_empty());
        let guided = eval.stats();
        assert!(guided.pruned_dead > 0, "seeds must be pruned as dead");
        assert_eq!(guided.succ_calls, 0, "no expansion may ever run");

        let unguided_opts = EvalOptions::default().with_cost_guided(false);
        let mut unguided = evaluate_conjunct(&q.conjuncts[0], &g, &o, &unguided_opts).unwrap();
        assert!(
            unguided.collect(None).unwrap().is_empty(),
            "pruning must not change the (empty) answer set"
        );
        assert!(
            unguided.stats().succ_calls > 0,
            "the ablation pays the walk"
        );
    }

    #[test]
    fn bound_pruning_counts_against_the_distance_ceiling() {
        let (g, o) = setup();
        // APPROX of a ghost label: every accepting run needs ≥ 1 edit, so
        // h[initial] ≥ 1 and a ceiling of 0 prunes the seeds by `g + h`
        // before any of them is expanded.
        let q = parse_query("(?X) <- APPROX (alice, ghost, ?X)").unwrap();
        let options = EvalOptions::default()
            .with_cost_guided(true)
            .with_max_distance(Some(0));
        let mut eval = evaluate_conjunct(&q.conjuncts[0], &g, &o, &options).unwrap();
        assert!(eval.collect(None).unwrap().is_empty());
        let stats = eval.stats();
        assert!(stats.pruned_bound > 0, "g + h must exceed the ceiling");
        assert!(
            stats.suppressed >= stats.pruned_bound,
            "bound-pruned tuples also count as suppressed (escalation signal)"
        );
        // Without the ceiling the same query has answers at distance 1.
        let unbounded = run_with(
            "(?X) <- APPROX (alice, ghost, ?X)",
            &g,
            &o,
            &EvalOptions::default().with_cost_guided(true),
        );
        assert!(!unbounded.is_empty());
        assert!(unbounded.iter().all(|a| a.distance >= 1));
    }

    #[test]
    fn deferral_matches_eager_answers_and_reports_its_work() {
        let (g, o) = setup();
        let key = |answers: &[ConjunctAnswer]| {
            let mut v: Vec<_> = answers.iter().map(|a| (a.x, a.y, a.distance)).collect();
            v.sort_unstable();
            v
        };
        // The RELAX query relaxes at the seed side only (`type` has no
        // superproperty here), so its automaton carries no positive-cost
        // transition and legitimately never defers.
        for (query, defers) in [
            ("(?X) <- APPROX (alice, knows.knows, ?X)", true),
            ("(?X, ?Y) <- APPROX (?X, worksAt, ?Y)", true),
            ("(?X) <- RELAX (Student, type-, ?X)", false),
        ] {
            let q = parse_query(query).unwrap();
            let guided_opts = EvalOptions::default().with_cost_guided(true);
            let mut guided = evaluate_conjunct(&q.conjuncts[0], &g, &o, &guided_opts).unwrap();
            let guided_answers = guided.collect(None).unwrap();
            let eager_opts = EvalOptions::default().with_cost_guided(false);
            let mut eager = evaluate_conjunct(&q.conjuncts[0], &g, &o, &eager_opts).unwrap();
            let eager_answers = eager.collect(None).unwrap();
            assert_eq!(
                key(&guided_answers),
                key(&eager_answers),
                "deferral changed answers for {query}"
            );
            assert_eq!(
                guided.stats().deferred_expansions > 0,
                defers,
                "unexpected deferral profile for {query}"
            );
            assert_eq!(eager.stats().deferred_expansions, 0);
        }
    }

    #[test]
    fn seed_batching_stays_lazy_when_the_initial_bound_is_positive() {
        // `ghost` labels no edge, so under APPROX every accepting run needs
        // ≥ 1 edit and h(initial) = 1: seeds enter the queue at key 1, not
        // 0. The refill gate must pace on the seeds' entry key — gating on
        // key 0 alone would release a batch on *every* loop iteration and
        // flood the whole feed in before the first answer.
        let mut g = GraphStore::new();
        for i in 0..500 {
            g.add_triple(&format!("n{i}"), "p", &format!("m{i}"));
        }
        let o = Ontology::new();
        let q = parse_query("(?X, ?Y) <- APPROX (?X, ghost, ?Y)").unwrap();
        let options = EvalOptions::default().with_cost_guided(true);
        let mut eval = evaluate_conjunct(&q.conjuncts[0], &g, &o, &options).unwrap();
        let first = eval
            .get_next()
            .unwrap()
            .expect("substitution answers exist");
        assert_eq!(first.distance, 1);
        let added = eval.stats().tuples_added;
        assert!(
            added <= 150,
            "one batch (100 seeds) plus its expansions should suffice for \
             the first answer, got {added} tuples added"
        );
    }

    #[test]
    fn with_mode_round_trip_matches_direct_queries() {
        let (g, o) = setup();
        let q = parse_query("(?X) <- (alice, knows, ?X)").unwrap();
        let approx_q = q.with_mode(QueryMode::Approx);
        assert_eq!(approx_q.conjuncts[0].mode, QueryMode::Approx);
        let direct = run("(?X) <- APPROX (alice, knows, ?X)", &g, &o);
        let mut eval =
            evaluate_conjunct(&approx_q.conjuncts[0], &g, &o, &EvalOptions::default()).unwrap();
        let via_mode = eval.collect(None).unwrap();
        assert_eq!(direct.len(), via_mode.len());
    }
}
