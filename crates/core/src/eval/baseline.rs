//! A plain product-automaton BFS evaluator for *exact* queries.
//!
//! The paper compares its exact-query performance against "other
//! automaton-based approaches" (e.g. [Koschmieder & Leser, SSDBM 2012]); this
//! module provides that baseline: a textbook evaluation of the product of the
//! query NFA with the data graph, breadth-first, with none of Omega's ranked
//! machinery (no distance dictionary, no final-tuple prioritisation, no
//! batched seeding, no incremental answers). It doubles as a correctness
//! oracle for the ranked evaluator in tests.

use std::collections::{HashSet, VecDeque};

use omega_automata::StateId;
use omega_graph::{GraphStore, NodeId};
use omega_ontology::Ontology;

use crate::answer::ConjunctAnswer;
use crate::error::Result;
use crate::eval::options::EvalOptions;
use crate::eval::plan::{compile_conjunct, ConjunctPlan, SeedSpec};
use crate::eval::stats::EvalStats;
use crate::eval::succ::{succ, CostFilter, SuccScratch, SuccTransition};
use crate::query::ast::Conjunct;

/// Exhaustive BFS evaluation of one conjunct (exact semantics only: all
/// APPROX/RELAX transitions are still followed, but answers are not ranked
/// and are returned in an arbitrary order).
pub struct BaselineEvaluator<'a> {
    graph: &'a GraphStore,
    ontology: &'a Ontology,
    plan: ConjunctPlan,
    stats: EvalStats,
}

impl<'a> BaselineEvaluator<'a> {
    /// Compiles `conjunct` and prepares the baseline evaluator.
    pub fn new(
        conjunct: &Conjunct,
        graph: &'a GraphStore,
        ontology: &'a Ontology,
        options: &EvalOptions,
    ) -> Result<BaselineEvaluator<'a>> {
        let plan = compile_conjunct(conjunct, graph, ontology, options)?;
        Ok(BaselineEvaluator {
            graph,
            ontology,
            plan,
            stats: EvalStats::default(),
        })
    }

    /// The compiled plan.
    pub fn plan(&self) -> &ConjunctPlan {
        &self.plan
    }

    /// Evaluation statistics (populated after [`BaselineEvaluator::run`]).
    pub fn stats(&self) -> EvalStats {
        self.stats
    }

    /// Runs the BFS to completion and returns all distinct answers at
    /// distance 0 (exact answers). Flexible-operator transitions are ignored
    /// by construction because any positive-cost step is pruned.
    pub fn run(&mut self) -> Vec<ConjunctAnswer> {
        let seeds: Vec<NodeId> = match &self.plan.seeds {
            SeedSpec::Fixed(seed) => seed
                .iter()
                .filter(|&&(_, d)| d == 0)
                .map(|&(n, _)| n)
                .collect(),
            SeedSpec::AllNodes { .. } => self.graph.node_ids().collect(),
            SeedSpec::MatchingInitial => {
                let mut set = omega_graph::NodeBitmap::new();
                for label in self.plan.nfa.initial_labels() {
                    set.union_with(&crate::eval::plan::seed_nodes_for_label(
                        self.graph,
                        self.ontology,
                        self.plan.inference,
                        label,
                    ));
                }
                set.iter().collect()
            }
        };

        let mut answers = Vec::new();
        let mut emitted: HashSet<(NodeId, NodeId)> = HashSet::new();
        let mut visited: HashSet<(NodeId, NodeId, StateId)> = HashSet::new();
        let mut queue: VecDeque<(NodeId, NodeId, StateId)> = VecDeque::new();

        let initial = self.plan.nfa.initial();
        for seed in seeds {
            if visited.insert((seed, seed, initial)) {
                queue.push_back((seed, seed, initial));
            }
        }
        let mut transitions: Vec<SuccTransition> = Vec::new();
        let mut scratch = SuccScratch::new();
        while let Some((start, node, state)) = queue.pop_front() {
            self.stats.tuples_processed += 1;
            if self.plan.nfa.final_weight(state) == Some(0) && self.accepts(start, node) {
                let (x, y) = if self.plan.reversed {
                    (node, start)
                } else {
                    (start, node)
                };
                if emitted.insert((x, y)) {
                    answers.push(ConjunctAnswer { x, y, distance: 0 });
                    self.stats.answers += 1;
                }
            }
            // Exact semantics: only zero-cost transitions participate, so
            // the positive-cost runs (and their lookups) are filtered out
            // at the source.
            succ(
                self.graph,
                self.ontology,
                self.plan.inference,
                &self.plan.nfa,
                state,
                node,
                CostFilter::ZeroOnly,
                None,
                &mut transitions,
                &mut scratch,
                &mut self.stats,
            );
            for t in &transitions {
                // Exact semantics: only zero-cost transitions participate.
                if t.cost == 0 && visited.insert((start, t.node, t.state)) {
                    queue.push_back((start, t.node, t.state));
                }
            }
        }
        answers
    }

    fn accepts(&self, start: NodeId, node: NodeId) -> bool {
        if let Some(required) = self.plan.final_constraint {
            if node != required {
                return false;
            }
        }
        if self.plan.require_equal_endpoints && node != start {
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::conjunct::evaluate_conjunct;
    use crate::query::parser::parse_query;

    fn setup() -> (GraphStore, Ontology) {
        let mut g = GraphStore::new();
        g.add_triple("a", "p", "b");
        g.add_triple("b", "p", "c");
        g.add_triple("c", "q", "d");
        g.add_triple("a", "q", "d");
        g.add_triple("d", "p", "a");
        (g, Ontology::new())
    }

    type Pairs = Vec<(NodeId, NodeId)>;

    fn both(query: &str) -> (Pairs, Pairs) {
        let (g, o) = setup();
        let q = parse_query(query).unwrap();
        let options = EvalOptions::default();
        let mut baseline = BaselineEvaluator::new(&q.conjuncts[0], &g, &o, &options).unwrap();
        let mut base: Vec<_> = baseline.run().iter().map(|a| (a.x, a.y)).collect();
        base.sort_unstable();
        let mut ranked_eval = evaluate_conjunct(&q.conjuncts[0], &g, &o, &options).unwrap();
        let mut ranked: Vec<_> = ranked_eval
            .collect(None)
            .unwrap()
            .iter()
            .filter(|a| a.distance == 0)
            .map(|a| (a.x, a.y))
            .collect();
        ranked.sort_unstable();
        (base, ranked)
    }

    #[test]
    fn baseline_agrees_with_ranked_on_exact_queries() {
        for query in [
            "(?X) <- (a, p.p, ?X)",
            "(?X) <- (a, p+, ?X)",
            "(?X) <- (a, p*.q, ?X)",
            "(?X, ?Y) <- (?X, p.q, ?Y)",
            "(?X, ?Y) <- (?X, p|q, ?Y)",
            "(?X) <- (?X, p, c)",
            "(?X) <- (?X, p+, ?X)",
        ] {
            let (base, ranked) = both(query);
            assert_eq!(base, ranked, "baseline mismatch for {query}");
        }
    }

    #[test]
    fn baseline_counts_stats() {
        let (g, o) = setup();
        let q = parse_query("(?X) <- (a, p+, ?X)").unwrap();
        let mut baseline =
            BaselineEvaluator::new(&q.conjuncts[0], &g, &o, &EvalOptions::default()).unwrap();
        let answers = baseline.run();
        assert!(!answers.is_empty());
        assert!(baseline.stats().tuples_processed > 0);
        assert_eq!(baseline.stats().answers as usize, answers.len());
    }
}
