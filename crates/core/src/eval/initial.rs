//! Batched feeding of initial nodes into `D_R`.
//!
//! For `(?X, R, ?Y)` conjuncts the paper retrieves the candidate start nodes
//! through coroutines that release them in batches (100 by default): new
//! batches are only pulled when `D_R` has run out of distance-0 tuples, so
//! queries answered from the first few start nodes never touch the rest of
//! the graph. [`InitialNodeFeed`] is the iterator equivalent.

use omega_graph::{GraphStore, NodeBitmap, NodeId};
use omega_ontology::Ontology;

use crate::eval::plan::{seed_nodes_for_label, ConjunctPlan, SeedSpec};
use crate::eval::tuple::Tuple;

/// A lazily drained supply of seed tuples.
///
/// Every seed is released as a *non-final* tuple: when the initial state is
/// final, `GetNext` itself enqueues the corresponding answer tuple while
/// processing the seed (line 13 of the paper's pseudocode), which both emits
/// the `(n, n)` answer and keeps expanding paths out of `n`.
#[derive(Debug)]
pub struct InitialNodeFeed {
    /// Pending seeds in reverse release order (so `pop` yields them in the
    /// intended order).
    pending: Vec<(NodeId, u32)>,
    batch_size: usize,
}

impl InitialNodeFeed {
    /// Builds the feed for a compiled conjunct.
    pub fn new(
        plan: &ConjunctPlan,
        graph: &GraphStore,
        ontology: &Ontology,
        batch_size: usize,
    ) -> InitialNodeFeed {
        let mut pending: Vec<(NodeId, u32)> = match &plan.seeds {
            SeedSpec::Fixed(seeds) => seeds.to_vec(),
            SeedSpec::AllNodes { .. } => graph.node_ids().map(|n| (n, 0)).collect(),
            SeedSpec::MatchingInitial => {
                let mut set = NodeBitmap::new();
                for label in plan.nfa.initial_labels() {
                    set.union_with(&seed_nodes_for_label(
                        graph,
                        ontology,
                        plan.inference,
                        label,
                    ));
                }
                set.iter().map(|n| (n, 0)).collect()
            }
        };
        // Seeds are released from the back; reverse so that the declared
        // order (constant first, then ancestors in increasing distance) is
        // preserved.
        pending.reverse();
        InitialNodeFeed {
            pending,
            batch_size: batch_size.max(1),
        }
    }

    /// Whether any seed remains to be released.
    pub fn has_more(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Total number of seeds not yet released.
    pub fn remaining(&self) -> usize {
        self.pending.len()
    }

    /// Releases the next batch of seed tuples (at most `batch_size`).
    pub fn next_batch(&mut self, initial_state: omega_automata::StateId) -> Vec<Tuple> {
        let mut batch = Vec::with_capacity(self.batch_size.min(self.pending.len()));
        for _ in 0..self.batch_size {
            match self.pending.pop() {
                Some((node, distance)) => batch.push(Tuple {
                    start: node,
                    node,
                    state: initial_state,
                    distance,
                    is_final: false,
                    deferred: false,
                }),
                None => break,
            }
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::options::EvalOptions;
    use crate::eval::plan::compile_conjunct;
    use crate::query::parser::parse_query;

    fn chain_graph(n: usize) -> (GraphStore, Ontology) {
        let mut g = GraphStore::new();
        for i in 0..n {
            g.add_triple(&format!("n{i}"), "next", &format!("n{}", i + 1));
        }
        (g, Ontology::new())
    }

    fn feed_for(
        query: &str,
        graph: &GraphStore,
        ontology: &Ontology,
        batch: usize,
    ) -> InitialNodeFeed {
        let q = parse_query(query).unwrap();
        let plan =
            compile_conjunct(&q.conjuncts[0], graph, ontology, &EvalOptions::default()).unwrap();
        InitialNodeFeed::new(&plan, graph, ontology, batch)
    }

    #[test]
    fn fixed_seeds_come_out_in_order() {
        let (g, o) = chain_graph(3);
        let mut feed = feed_for("(?X) <- (n0, next, ?X)", &g, &o, 10);
        assert_eq!(feed.remaining(), 1);
        let batch = feed.next_batch(omega_automata::StateId(0));
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].node, g.node_by_label("n0").unwrap());
        assert!(!feed.has_more());
        assert!(feed.next_batch(omega_automata::StateId(0)).is_empty());
    }

    #[test]
    fn matching_initial_only_selects_nodes_with_the_edge() {
        let (mut g, o) = chain_graph(5);
        g.add_node("isolated");
        let mut feed = feed_for("(?X, ?Y) <- (?X, next, ?Y)", &g, &o, 100);
        // nodes n0..n4 have outgoing `next`; n5 and `isolated` do not.
        assert_eq!(feed.remaining(), 5);
        let batch = feed.next_batch(omega_automata::StateId(0));
        assert!(batch.iter().all(|t| g.node_label(t.node).starts_with('n')));
    }

    #[test]
    fn batches_respect_batch_size() {
        let (g, o) = chain_graph(25);
        let mut feed = feed_for("(?X, ?Y) <- (?X, next, ?Y)", &g, &o, 10);
        let first = feed.next_batch(omega_automata::StateId(0));
        assert_eq!(first.len(), 10);
        assert_eq!(feed.remaining(), 15);
        let second = feed.next_batch(omega_automata::StateId(0));
        assert_eq!(second.len(), 10);
        let third = feed.next_batch(omega_automata::StateId(0));
        assert_eq!(third.len(), 5);
        assert!(!feed.has_more());
    }

    #[test]
    fn nullable_regex_feeds_every_node() {
        let (g, o) = chain_graph(4);
        let mut feed = feed_for("(?X, ?Y) <- (?X, next*, ?Y)", &g, &o, 100);
        assert_eq!(feed.remaining(), g.node_count());
        let batch = feed.next_batch(omega_automata::StateId(0));
        assert!(batch.iter().all(|t| !t.is_final && t.distance == 0));
    }
}
