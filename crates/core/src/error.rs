//! Error type of the Omega query processor.

use std::fmt;
use std::time::Duration;

use omega_regex::RegexParseError;

/// Errors raised while parsing or evaluating a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OmegaError {
    /// The query text could not be parsed.
    Parse {
        /// Byte offset of the error in the query text (best effort).
        position: usize,
        /// Human-readable description.
        message: String,
    },
    /// A regular expression inside the query could not be parsed.
    Regex(RegexParseError),
    /// A constant in the query does not name any node of the data graph.
    UnknownConstant(String),
    /// A head variable does not occur in any conjunct.
    UnboundHeadVariable(String),
    /// The query has no conjuncts.
    EmptyQuery,
    /// The evaluator exceeded its configured memory budget (the analogue of
    /// the paper's out-of-memory failures on YAGO queries 4 and 5).
    ResourceExhausted {
        /// Number of live tuples when the budget was hit.
        tuples: usize,
    },
    /// The request's wall-clock deadline passed before evaluation finished.
    ///
    /// Raised by the evaluator loops when a deadline is set through
    /// [`crate::service::ExecOptions`]; answers produced before the deadline
    /// have already been yielded by the stream.
    DeadlineExceeded,
    /// The execution's shared [`crate::eval::CancelToken`] was triggered —
    /// normally because the answer stream finished, failed or was dropped
    /// while parallel conjunct workers were still producing. Consumers never
    /// observe this variant through [`crate::service::Answers`]; it exists so
    /// a worker abandoning its stream mid-flight is distinguishable from a
    /// genuine evaluation failure.
    Cancelled,
    /// The engine refused to admit the execution: the database-wide
    /// resource governor found the shared pools saturated (too many
    /// concurrent executions, no admission tokens, or no free tuple
    /// capacity). The caller should back off for at least `retry_after`
    /// before retrying; [`crate::service::ExecOptions::with_on_overload`]
    /// selects how the service reacts instead of surfacing this error.
    Overloaded {
        /// Suggested client backoff before the next attempt.
        retry_after: Duration,
    },
    /// A mutation batch could not be applied to the live graph. The graph
    /// is unchanged — `apply` publishes all of a batch or none of it — so
    /// the caller may safely retry the same batch.
    MutationFailed {
        /// Human-readable description of the failure.
        message: String,
    },
    /// The database has degraded to read-only mode: its write-ahead log can
    /// no longer persist mutations (disk full, I/O error), so acknowledging
    /// a write would lie about durability. Reads and queries continue to be
    /// served; writes fail with this variant until an operator repairs the
    /// log and restarts (recovery replays every acknowledged record).
    ReadOnly {
        /// Human-readable description of why durability degraded.
        message: String,
    },
    /// An engine invariant was violated at runtime — e.g. a conjunct worker
    /// thread panicked. Always a bug, never a user error; surfaced as a
    /// typed value so a server in front of the engine degrades to a failed
    /// request instead of a crashed process.
    Internal {
        /// Human-readable description of the violated invariant.
        message: String,
    },
}

impl fmt::Display for OmegaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OmegaError::Parse { position, message } => {
                write!(f, "query parse error at offset {position}: {message}")
            }
            OmegaError::Regex(err) => write!(f, "{err}"),
            OmegaError::UnknownConstant(c) => {
                write!(f, "constant {c:?} does not name a node in the data graph")
            }
            OmegaError::UnboundHeadVariable(v) => {
                write!(f, "head variable ?{v} does not occur in the query body")
            }
            OmegaError::EmptyQuery => write!(f, "query has no conjuncts"),
            OmegaError::ResourceExhausted { tuples } => write!(
                f,
                "evaluation exceeded the configured memory budget ({tuples} live tuples)"
            ),
            OmegaError::DeadlineExceeded => {
                write!(f, "evaluation exceeded the request deadline")
            }
            OmegaError::Cancelled => {
                write!(f, "evaluation was cancelled")
            }
            OmegaError::Overloaded { retry_after } => {
                write!(f, "engine overloaded; retry after {:?}", retry_after)
            }
            OmegaError::MutationFailed { message } => {
                write!(f, "mutation batch failed to apply: {message}")
            }
            OmegaError::ReadOnly { message } => {
                write!(f, "database is read-only (durability degraded): {message}")
            }
            OmegaError::Internal { message } => {
                write!(f, "internal engine error: {message}")
            }
        }
    }
}

impl std::error::Error for OmegaError {}

impl From<RegexParseError> for OmegaError {
    fn from(err: RegexParseError) -> Self {
        OmegaError::Regex(err)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, OmegaError>;
