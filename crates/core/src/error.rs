//! Error type of the Omega query processor.

use std::fmt;

use omega_regex::RegexParseError;

/// Errors raised while parsing or evaluating a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OmegaError {
    /// The query text could not be parsed.
    Parse {
        /// Byte offset of the error in the query text (best effort).
        position: usize,
        /// Human-readable description.
        message: String,
    },
    /// A regular expression inside the query could not be parsed.
    Regex(RegexParseError),
    /// A constant in the query does not name any node of the data graph.
    UnknownConstant(String),
    /// A head variable does not occur in any conjunct.
    UnboundHeadVariable(String),
    /// The query has no conjuncts.
    EmptyQuery,
    /// The evaluator exceeded its configured memory budget (the analogue of
    /// the paper's out-of-memory failures on YAGO queries 4 and 5).
    ResourceExhausted {
        /// Number of live tuples when the budget was hit.
        tuples: usize,
    },
    /// The request's wall-clock deadline passed before evaluation finished.
    ///
    /// Raised by the evaluator loops when a deadline is set through
    /// [`crate::service::ExecOptions`]; answers produced before the deadline
    /// have already been yielded by the stream.
    DeadlineExceeded,
    /// The execution's shared [`crate::eval::CancelToken`] was triggered —
    /// normally because the answer stream finished, failed or was dropped
    /// while parallel conjunct workers were still producing. Consumers never
    /// observe this variant through [`crate::service::Answers`]; it exists so
    /// a worker abandoning its stream mid-flight is distinguishable from a
    /// genuine evaluation failure.
    Cancelled,
}

impl fmt::Display for OmegaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OmegaError::Parse { position, message } => {
                write!(f, "query parse error at offset {position}: {message}")
            }
            OmegaError::Regex(err) => write!(f, "{err}"),
            OmegaError::UnknownConstant(c) => {
                write!(f, "constant {c:?} does not name a node in the data graph")
            }
            OmegaError::UnboundHeadVariable(v) => {
                write!(f, "head variable ?{v} does not occur in the query body")
            }
            OmegaError::EmptyQuery => write!(f, "query has no conjuncts"),
            OmegaError::ResourceExhausted { tuples } => write!(
                f,
                "evaluation exceeded the configured memory budget ({tuples} live tuples)"
            ),
            OmegaError::DeadlineExceeded => {
                write!(f, "evaluation exceeded the request deadline")
            }
            OmegaError::Cancelled => {
                write!(f, "evaluation was cancelled")
            }
        }
    }
}

impl std::error::Error for OmegaError {}

impl From<RegexParseError> for OmegaError {
    fn from(err: RegexParseError) -> Self {
        OmegaError::Regex(err)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, OmegaError>;
