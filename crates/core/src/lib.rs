//! # omega-core
//!
//! The Omega query processor of *Implementing Flexible Operators for Regular
//! Path Queries* (Selmer, Poulovassilis & Wood, EDBT/ICDT Workshops 2015):
//! conjunctive regular path queries (CRPQs) over an edge-labelled graph and
//! an RDFS-style ontology, extended with two flexible operators —
//!
//! * **APPROX**: approximate matching of a conjunct's regular expression
//!   under edit distance (insertion / deletion / substitution of edge
//!   labels), and
//! * **RELAX**: ontology-driven relaxation (superclass / superproperty steps,
//!   property-to-`type`-edge rewriting) evaluated under RDFS inference —
//!
//! with answers returned **incrementally in non-decreasing order of
//! distance**.
//!
//! ## Quick start
//!
//! The service API is built around three pieces: a shared [`Database`]
//! handle, [`PreparedQuery`] statements compiled once and executed many
//! times, and per-request [`ExecOptions`]:
//!
//! ```
//! use omega_core::{Database, ExecOptions};
//! use omega_graph::GraphStore;
//! use omega_ontology::Ontology;
//!
//! let mut graph = GraphStore::new();
//! graph.add_triple("UK", "hasCapital", "London");
//! graph.add_triple("college", "locatedIn", "UK");
//! graph.add_triple("alice", "gradFrom", "college");
//!
//! // `Database` is Send + Sync and clones are Arc bumps: share one handle
//! // across however many threads serve queries.
//! let db = Database::new(graph, Ontology::new());
//!
//! // The user got the direction of `gradFrom` wrong — no exact answers…
//! let prepared = db.prepare("(?X) <- (UK, locatedIn-.gradFrom, ?X)").unwrap();
//! let exact = prepared.execute(&ExecOptions::new().with_limit(10)).unwrap();
//! assert!(exact.is_empty());
//!
//! // …but APPROX repairs the query (substituting `gradFrom-`) at distance 1.
//! // Prepared statements are cached by text, and every request brings its
//! // own limit / deadline / toggles.
//! let approx = db.prepare("(?X) <- APPROX (UK, locatedIn-.gradFrom, ?X)").unwrap();
//! let request = ExecOptions::new()
//!     .with_limit(10)
//!     .with_timeout(std::time::Duration::from_secs(5));
//! let answers = approx.execute(&request).unwrap();
//! let alice = answers.iter().find(|a| a.get("X") == Some("alice")).unwrap();
//! assert_eq!(alice.distance, 1);
//!
//! // Streaming: `Answers` is an Iterator over Result<Answer> that carries
//! // the evaluator's statistics.
//! let mut stream = approx.answers(&ExecOptions::new().with_limit(1));
//! assert!(stream.next().unwrap().is_ok());
//! assert!(stream.stats().tuples_processed > 0);
//! ```
//!
//! ## Architecture
//!
//! * [`query`] — the CRPQ model and its textual parser,
//! * [`eval::plan`] — conjunct compilation (automaton construction, APPROX /
//!   RELAX augmentation, conjunct reversal, seed selection: the paper's
//!   `Open`),
//! * [`eval::conjunct`] — the ranked evaluator (`GetNext` / `Succ`) over the
//!   lazily built weighted product automaton,
//! * [`eval::distance_aware`] and [`eval::disjunction`] — the two
//!   optimisations of Section 4.3,
//! * [`eval::rank_join`] — the multi-conjunct ranked join,
//! * [`eval::baseline`] — the plain product-automaton BFS baseline used for
//!   comparison with other automaton-based approaches,
//! * [`service`] — the shared [`Database`] / [`PreparedQuery`] /
//!   [`ExecOptions`] / [`Answers`] service surface,
//! * [`engine`] — the deprecated [`Omega`] single-owner facade, kept as a
//!   thin shim over [`service`].

pub mod answer;
pub mod engine;
pub mod error;
pub mod eval;
pub mod govern;
pub mod query;
pub mod service;

pub use answer::{Answer, ConjunctAnswer};
#[allow(deprecated)]
pub use engine::{Omega, QueryStream};
pub use error::{OmegaError, Result};
pub use eval::{
    live_parallel_workers, AnswerStream, BaselineEvaluator, CancelToken, ConjunctEvaluator,
    DisjunctionEvaluator, DistanceAwareEvaluator, EvalOptions, EvalStats, ParallelStream, RankJoin,
    TruncationReason, WorkerPool,
};
pub use govern::{
    ExecutionPermit, GovernorConfig, GovernorGauges, GovernorHandle, ResourceGovernor,
};
pub use omega_graph::wal::{FsyncPolicy, WalConfig, WalError};
pub use omega_graph::SnapshotError;
pub use omega_obs::{ProfilePhase, QueryProfile, Registry as MetricsRegistry};
pub use query::{parse_query, Conjunct, Query, QueryMode, Term};
pub use service::{
    conjunct_variables, Answers, Database, ExecOptions, GraphRef, MutationBatch, MutationReport,
    OverloadPolicy, PreparedQuery, RecoveryReport,
};
