//! # omega-core
//!
//! The Omega query processor of *Implementing Flexible Operators for Regular
//! Path Queries* (Selmer, Poulovassilis & Wood, EDBT/ICDT Workshops 2015):
//! conjunctive regular path queries (CRPQs) over an edge-labelled graph and
//! an RDFS-style ontology, extended with two flexible operators —
//!
//! * **APPROX**: approximate matching of a conjunct's regular expression
//!   under edit distance (insertion / deletion / substitution of edge
//!   labels), and
//! * **RELAX**: ontology-driven relaxation (superclass / superproperty steps,
//!   property-to-`type`-edge rewriting) evaluated under RDFS inference —
//!
//! with answers returned **incrementally in non-decreasing order of
//! distance**.
//!
//! ## Quick start
//!
//! ```
//! use omega_core::Omega;
//! use omega_graph::GraphStore;
//! use omega_ontology::Ontology;
//!
//! let mut graph = GraphStore::new();
//! graph.add_triple("UK", "hasCapital", "London");
//! graph.add_triple("college", "locatedIn", "UK");
//! graph.add_triple("alice", "gradFrom", "college");
//!
//! let omega = Omega::new(graph, Ontology::new());
//!
//! // The user got the direction of `gradFrom` wrong — no exact answers…
//! let exact = omega
//!     .execute("(?X) <- (UK, locatedIn-.gradFrom, ?X)", Some(10))
//!     .unwrap();
//! assert!(exact.is_empty());
//!
//! // …but APPROX repairs the query (substituting `gradFrom-`) at distance 1.
//! let approx = omega
//!     .execute("(?X) <- APPROX (UK, locatedIn-.gradFrom, ?X)", Some(10))
//!     .unwrap();
//! let alice = approx.iter().find(|a| a.get("X") == Some("alice")).unwrap();
//! assert_eq!(alice.distance, 1);
//! ```
//!
//! ## Architecture
//!
//! * [`query`] — the CRPQ model and its textual parser,
//! * [`eval::plan`] — conjunct compilation (automaton construction, APPROX /
//!   RELAX augmentation, conjunct reversal, seed selection: the paper's
//!   `Open`),
//! * [`eval::conjunct`] — the ranked evaluator (`GetNext` / `Succ`) over the
//!   lazily built weighted product automaton,
//! * [`eval::distance_aware`] and [`eval::disjunction`] — the two
//!   optimisations of Section 4.3,
//! * [`eval::rank_join`] — the multi-conjunct ranked join,
//! * [`eval::baseline`] — the plain product-automaton BFS baseline used for
//!   comparison with other automaton-based approaches,
//! * [`engine`] — the [`Omega`] facade.

pub mod answer;
pub mod engine;
pub mod error;
pub mod eval;
pub mod query;

pub use answer::{Answer, ConjunctAnswer};
pub use engine::{Omega, QueryStream};
pub use error::{OmegaError, Result};
pub use eval::{
    AnswerStream, BaselineEvaluator, ConjunctEvaluator, DisjunctionEvaluator,
    DistanceAwareEvaluator, EvalOptions, EvalStats, RankJoin,
};
pub use query::{parse_query, Conjunct, Query, QueryMode, Term};
