//! Query answers.

use std::collections::BTreeMap;
use std::fmt;

use omega_graph::NodeId;

/// An answer to a single conjunct: instantiations of the conjunct's subject
/// (`x`) and object (`y`) terms, together with the distance at which the
/// answer was found (0 for exact matches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConjunctAnswer {
    /// Binding of the conjunct's subject term.
    pub x: NodeId,
    /// Binding of the conjunct's object term.
    pub y: NodeId,
    /// Edit/relaxation distance of the answer.
    pub distance: u32,
}

/// An answer to a (possibly multi-conjunct) query: bindings of the head
/// variables to node labels, plus the total distance summed over conjuncts.
///
/// Answers are produced in non-decreasing order of `distance`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Answer {
    /// Head-variable bindings (variable name without the leading `?` →
    /// node label).
    pub bindings: BTreeMap<String, String>,
    /// Total distance of the answer.
    pub distance: u32,
}

impl Answer {
    /// The binding of `variable`, if present.
    pub fn get(&self, variable: &str) -> Option<&str> {
        self.bindings
            .get(variable.trim_start_matches('?'))
            .map(String::as_str)
    }
}

impl fmt::Display for Answer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .bindings
            .iter()
            .map(|(var, value)| format!("?{var}={value}"))
            .collect();
        write!(f, "[{}] @ distance {}", parts.join(", "), self.distance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn answer_accessors() {
        let mut bindings = BTreeMap::new();
        bindings.insert("X".to_owned(), "Alice".to_owned());
        let a = Answer {
            bindings,
            distance: 2,
        };
        assert_eq!(a.get("X"), Some("Alice"));
        assert_eq!(a.get("?X"), Some("Alice"));
        assert_eq!(a.get("Y"), None);
        assert_eq!(a.to_string(), "[?X=Alice] @ distance 2");
    }
}
