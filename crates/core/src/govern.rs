//! Engine-wide resource governance: shared pools, admission control and
//! gauges.
//!
//! Per-query budgets (`max_tuples`, deadlines) bound a *single* execution,
//! but a database handle is shared by arbitrarily many concurrent sessions —
//! nothing stopped fifty well-behaved queries from collectively holding
//! fifty budgets' worth of live tuples. The [`ResourceGovernor`] closes that
//! gap: one instance is owned by every clone of a
//! [`crate::Database`] and accounts, *globally*:
//!
//! * **live tuples** — evaluators reserve their queue + visited-set
//!   occupancy from a shared pool in chunks, with bounded-backoff
//!   acquisition; an exhausted pool trips the same
//!   [`crate::OmegaError::ResourceExhausted`] path as a per-query budget
//!   (and therefore degrades gracefully under
//!   [`crate::service::OverloadPolicy::Degrade`]),
//! * **rank-join buffer entries** — the service layer mirrors each
//!   execution's buffered join state into a gauge,
//! * **concurrent executions** — a token-bucket admission gate hands out
//!   one [`ExecutionPermit`] per execution and rejects new work with
//!   [`crate::OmegaError::Overloaded`] (carrying a `retry_after` hint) when
//!   the concurrency ceiling is reached or the bucket is dry.
//!
//! All accounting is RAII: permits and reservations release on drop, so the
//! gauges return to zero when the last answer stream of an execution is
//! dropped — even when it failed, was cancelled, or panicked. The default
//! configuration is fully open (no limits), so a database built without
//! explicit governance behaves exactly as before.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use omega_obs::{Counter, Registry};

use crate::error::{OmegaError, Result};

/// Tuples acquired from the shared pool per reservation round-trip.
/// Chunking keeps the atomic pool counter off the per-tuple hot path: an
/// evaluator touches the pool once per `RESERVE_CHUNK` tuples of growth.
pub(crate) const RESERVE_CHUNK: usize = 1024;

/// How long one failed pool acquisition backs off before re-probing.
const ACQUIRE_POLL: Duration = Duration::from_micros(200);

/// Limits and admission parameters of a [`ResourceGovernor`].
///
/// Every field defaults to "unlimited", so `GovernorConfig::default()`
/// governs nothing — construction via [`crate::Database::new`] is
/// behaviour-preserving.
#[derive(Debug, Clone, PartialEq)]
pub struct GovernorConfig {
    /// Total live tuples (queues + visited sets) across all concurrent
    /// executions. `None` = unlimited.
    pub max_live_tuples: Option<usize>,
    /// Maximum concurrently admitted executions. `None` = unlimited.
    pub max_concurrent: Option<usize>,
    /// Admission token bucket: `(rate per second, burst capacity)`. Each
    /// admission consumes one token; tokens refill continuously at `rate`
    /// up to `burst`. `None` = no rate limit.
    pub admission_rate: Option<(f64, usize)>,
    /// Backoff hint returned inside [`OmegaError::Overloaded`] rejections.
    pub retry_after: Duration,
    /// Upper bound on how long one pool reservation may back off before
    /// giving up with `ResourceExhausted`. Keeps a saturated pool from
    /// turning into an unbounded stall.
    pub acquire_timeout: Duration,
}

impl Default for GovernorConfig {
    fn default() -> GovernorConfig {
        GovernorConfig {
            max_live_tuples: None,
            max_concurrent: None,
            admission_rate: None,
            retry_after: Duration::from_millis(25),
            acquire_timeout: Duration::from_millis(50),
        }
    }
}

impl GovernorConfig {
    /// Caps the shared live-tuple pool.
    pub fn with_max_live_tuples(mut self, max: usize) -> Self {
        self.max_live_tuples = Some(max);
        self
    }

    /// Caps concurrently admitted executions.
    pub fn with_max_concurrent(mut self, max: usize) -> Self {
        self.max_concurrent = Some(max);
        self
    }

    /// Installs an admission token bucket (`rate` tokens/second, `burst`
    /// capacity).
    pub fn with_admission_rate(mut self, rate: f64, burst: usize) -> Self {
        self.admission_rate = Some((rate, burst));
        self
    }

    /// Sets the backoff hint carried by overload rejections.
    pub fn with_retry_after(mut self, retry_after: Duration) -> Self {
        self.retry_after = retry_after;
        self
    }

    /// Bounds pool-acquisition backoff.
    pub fn with_acquire_timeout(mut self, timeout: Duration) -> Self {
        self.acquire_timeout = timeout;
        self
    }
}

/// Continuous-refill token bucket for admission pacing.
#[derive(Debug)]
struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last_refill: Instant,
}

impl TokenBucket {
    fn new(rate: f64, burst: usize) -> TokenBucket {
        TokenBucket {
            rate: rate.max(0.0),
            burst: burst.max(1) as f64,
            tokens: burst.max(1) as f64,
            last_refill: Instant::now(),
        }
    }

    /// Takes one token if available; otherwise reports how long until one
    /// refills.
    fn try_take(&mut self, now: Instant) -> std::result::Result<(), Duration> {
        let elapsed = now.saturating_duration_since(self.last_refill);
        self.tokens = (self.tokens + elapsed.as_secs_f64() * self.rate).min(self.burst);
        self.last_refill = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else if self.rate > 0.0 {
            Err(Duration::from_secs_f64((1.0 - self.tokens) / self.rate))
        } else {
            Err(Duration::MAX)
        }
    }
}

/// Point-in-time snapshot of the governor's gauges, for tests and the bench
/// harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GovernorGauges {
    /// Tuples currently reserved from the shared pool (chunk granularity).
    pub live_tuples: usize,
    /// Rank-join buffer entries currently held by live executions.
    pub join_buffer_entries: usize,
    /// Executions currently admitted (permits outstanding).
    pub executions: usize,
    /// Executions rejected with `Overloaded` since construction.
    pub rejected: u64,
}

/// Registry handles for the governor's admission counters. Bound once via
/// [`ResourceGovernor::bind_metrics`]; until then recording is skipped (an
/// ungoverned embedded database pays one `OnceLock` load per admission).
#[derive(Debug)]
struct GovernorMetrics {
    admitted: Arc<Counter>,
    rejected: Arc<Counter>,
    sheds: Arc<Counter>,
    retries: Arc<Counter>,
}

/// The engine-wide accountant. One per [`crate::Database`] family: clones
/// and [`crate::Database::reconfigured`] views share it, so *every* session
/// against the same storage draws from the same pools.
#[derive(Debug)]
pub struct ResourceGovernor {
    config: GovernorConfig,
    live_tuples: AtomicUsize,
    join_buffer_entries: AtomicUsize,
    executions: AtomicUsize,
    rejected: std::sync::atomic::AtomicU64,
    bucket: Option<Mutex<TokenBucket>>,
    metrics: OnceLock<GovernorMetrics>,
}

impl ResourceGovernor {
    /// Builds a governor from `config`.
    pub fn new(config: GovernorConfig) -> Arc<ResourceGovernor> {
        let bucket = config
            .admission_rate
            .map(|(rate, burst)| Mutex::new(TokenBucket::new(rate, burst)));
        Arc::new(ResourceGovernor {
            config,
            live_tuples: AtomicUsize::new(0),
            join_buffer_entries: AtomicUsize::new(0),
            executions: AtomicUsize::new(0),
            rejected: std::sync::atomic::AtomicU64::new(0),
            bucket,
            metrics: OnceLock::new(),
        })
    }

    /// Registers this governor's admission counters
    /// (`omega_govern_{admitted,rejected,sheds,retries}_total`) with a
    /// metrics registry. Idempotent: the first binding wins, later calls are
    /// no-ops, so a reconfigured database keeps feeding the same series.
    pub fn bind_metrics(&self, registry: &Registry) {
        let _ = self.metrics.set(GovernorMetrics {
            admitted: registry.counter("omega_govern_admitted_total", &[]),
            rejected: registry.counter("omega_govern_rejected_total", &[]),
            sheds: registry.counter("omega_govern_sheds_total", &[]),
            retries: registry.counter("omega_govern_retries_total", &[]),
        });
    }

    /// Records one shed (load rejected after admission, query-level) and, if
    /// the service retried it, the retry.
    pub(crate) fn note_shed(&self, retried: bool) {
        if let Some(m) = self.metrics.get() {
            m.sheds.inc();
            if retried {
                m.retries.inc();
            }
        }
    }

    /// A fully open governor (the default for databases built without
    /// explicit governance).
    pub fn unlimited() -> Arc<ResourceGovernor> {
        ResourceGovernor::new(GovernorConfig::default())
    }

    /// The configuration this governor enforces.
    pub fn config(&self) -> &GovernorConfig {
        &self.config
    }

    /// Current gauge values.
    pub fn gauges(&self) -> GovernorGauges {
        GovernorGauges {
            live_tuples: self.live_tuples.load(Ordering::SeqCst),
            join_buffer_entries: self.join_buffer_entries.load(Ordering::SeqCst),
            executions: self.executions.load(Ordering::SeqCst),
            rejected: self.rejected.load(Ordering::SeqCst),
        }
    }

    /// Admits one execution, or rejects it with
    /// [`OmegaError::Overloaded`] when the concurrency ceiling is reached,
    /// the admission bucket is dry, or the tuple pool is already saturated.
    pub fn admit(self: &Arc<Self>) -> Result<ExecutionPermit> {
        // Token bucket first: a dry bucket rejects regardless of how many
        // slots are free (it paces the *rate* of new work).
        if let Some(bucket) = &self.bucket {
            let mut bucket = bucket.lock().unwrap_or_else(|e| e.into_inner());
            if let Err(wait) = bucket.try_take(Instant::now()) {
                drop(bucket);
                return Err(self.reject(wait));
            }
        }
        // A pool already at capacity cannot feed another evaluator: reject
        // at admission instead of letting the execution start and
        // immediately exhaust.
        if let Some(max) = self.config.max_live_tuples {
            if self.live_tuples.load(Ordering::SeqCst) >= max {
                return Err(self.reject(self.config.retry_after));
            }
        }
        if let Some(max) = self.config.max_concurrent {
            // Optimistic CAS loop so the gauge never overshoots the ceiling.
            let mut current = self.executions.load(Ordering::SeqCst);
            loop {
                if current >= max {
                    return Err(self.reject(self.config.retry_after));
                }
                match self.executions.compare_exchange(
                    current,
                    current + 1,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                ) {
                    Ok(_) => break,
                    Err(seen) => current = seen,
                }
            }
        } else {
            self.executions.fetch_add(1, Ordering::SeqCst);
        }
        if let Some(m) = self.metrics.get() {
            m.admitted.inc();
        }
        Ok(ExecutionPermit {
            governor: Arc::clone(self),
        })
    }

    fn reject(&self, wait: Duration) -> OmegaError {
        self.rejected.fetch_add(1, Ordering::SeqCst);
        if let Some(m) = self.metrics.get() {
            m.rejected.inc();
        }
        OmegaError::Overloaded {
            retry_after: wait
                .max(self.config.retry_after)
                .min(Duration::from_secs(5)),
        }
    }

    /// Attempts to move `amount` tuples from the shared pool into a
    /// reservation, backing off (bounded by `acquire_timeout`) while the
    /// pool is full. `false` means the pool stayed saturated for the whole
    /// backoff window.
    fn acquire_tuples(&self, amount: usize) -> bool {
        let Some(max) = self.config.max_live_tuples else {
            // Unlimited: account the gauge, never refuse.
            self.live_tuples.fetch_add(amount, Ordering::SeqCst);
            return true;
        };
        let deadline = Instant::now() + self.config.acquire_timeout;
        loop {
            let mut current = self.live_tuples.load(Ordering::SeqCst);
            loop {
                if current.saturating_add(amount) > max {
                    break;
                }
                match self.live_tuples.compare_exchange(
                    current,
                    current + amount,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                ) {
                    Ok(_) => return true,
                    Err(seen) => current = seen,
                }
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(ACQUIRE_POLL);
        }
    }

    fn release_tuples(&self, amount: usize) {
        self.live_tuples.fetch_sub(amount, Ordering::SeqCst);
    }

    /// Adjusts the rank-join buffer gauge by a signed delta.
    pub(crate) fn adjust_join_buffer(&self, delta: isize) {
        if delta >= 0 {
            self.join_buffer_entries
                .fetch_add(delta as usize, Ordering::SeqCst);
        } else {
            self.join_buffer_entries
                .fetch_sub(delta.unsigned_abs(), Ordering::SeqCst);
        }
    }
}

/// RAII admission permit: one concurrent-execution slot, returned on drop.
#[derive(Debug)]
pub struct ExecutionPermit {
    governor: Arc<ResourceGovernor>,
}

impl Drop for ExecutionPermit {
    fn drop(&mut self) {
        self.governor.executions.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A shared governor handle carried inside [`crate::eval::EvalOptions`].
///
/// Wraps the `Arc` so the options struct keeps its derived `PartialEq`/`Eq`:
/// like [`crate::eval::CancelToken`], equality is identity — two handles are
/// equal exactly when they account against the same governor.
#[derive(Debug, Clone)]
pub struct GovernorHandle(pub(crate) Arc<ResourceGovernor>);

impl GovernorHandle {
    /// The governor this handle accounts against.
    pub fn governor(&self) -> &Arc<ResourceGovernor> {
        &self.0
    }

    /// Opens a fresh per-evaluator tuple reservation against this governor.
    pub(crate) fn reservation(&self) -> TupleReservation {
        TupleReservation {
            governor: Arc::clone(&self.0),
            held: 0,
        }
    }
}

impl PartialEq for GovernorHandle {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Eq for GovernorHandle {}

/// One evaluator's chunked claim on the shared tuple pool.
///
/// The evaluator tracks its exact live-tuple count locally and calls
/// [`TupleReservation::covers`] on the budget-check cadence; the reservation
/// grows in [`RESERVE_CHUNK`] steps (each step one bounded-backoff pool
/// acquisition) and releases everything on drop — including when the
/// evaluator is abandoned mid-query by a cancellation, error or panic.
#[derive(Debug, Default)]
pub(crate) struct TupleReservation {
    governor: Arc<ResourceGovernor>,
    held: usize,
}

impl TupleReservation {
    /// Grows the reservation until it covers `live` tuples. `false` means
    /// the shared pool could not satisfy the claim within its backoff
    /// window — the caller should treat this exactly like a tripped
    /// per-query budget.
    pub(crate) fn covers(&mut self, live: usize) -> bool {
        while self.held < live {
            let want = RESERVE_CHUNK.max(live - self.held);
            if !self.governor.acquire_tuples(want) {
                return false;
            }
            self.held += want;
        }
        true
    }
}

impl Drop for TupleReservation {
    fn drop(&mut self) {
        if self.held > 0 {
            self.governor.release_tuples(self.held);
        }
    }
}

// `Default` needs a governor to point at; an unlimited one keeps the
// zero-value useful for evaluators built outside the service layer.
impl Default for ResourceGovernor {
    fn default() -> Self {
        ResourceGovernor {
            config: GovernorConfig::default(),
            live_tuples: AtomicUsize::new(0),
            join_buffer_entries: AtomicUsize::new(0),
            executions: AtomicUsize::new(0),
            rejected: std::sync::atomic::AtomicU64::new(0),
            bucket: None,
            metrics: OnceLock::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_governor_admits_everything() {
        let gov = ResourceGovernor::unlimited();
        let permits: Vec<_> = (0..64).map(|_| gov.admit().unwrap()).collect();
        assert_eq!(gov.gauges().executions, 64);
        drop(permits);
        assert_eq!(gov.gauges().executions, 0);
        assert_eq!(gov.gauges().rejected, 0);
    }

    #[test]
    fn concurrency_ceiling_rejects_with_retry_hint() {
        let gov = ResourceGovernor::new(
            GovernorConfig::default()
                .with_max_concurrent(2)
                .with_retry_after(Duration::from_millis(7)),
        );
        let a = gov.admit().unwrap();
        let _b = gov.admit().unwrap();
        let err = gov.admit().unwrap_err();
        match err {
            OmegaError::Overloaded { retry_after } => {
                assert!(retry_after >= Duration::from_millis(7));
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(gov.gauges().rejected, 1);
        // Releasing a permit reopens the gate.
        drop(a);
        let _c = gov.admit().unwrap();
    }

    #[test]
    fn token_bucket_paces_admissions() {
        // Burst 2, refill effectively never (rate ~0): two admissions pass,
        // the third is rejected even though concurrency is unlimited.
        let gov = ResourceGovernor::new(GovernorConfig::default().with_admission_rate(0.0001, 2));
        let _a = gov.admit().unwrap();
        let _b = gov.admit().unwrap();
        assert!(matches!(gov.admit(), Err(OmegaError::Overloaded { .. })));
    }

    #[test]
    fn tuple_pool_reserves_in_chunks_and_releases_on_drop() {
        let gov = ResourceGovernor::new(
            GovernorConfig::default()
                .with_max_live_tuples(3 * RESERVE_CHUNK)
                .with_acquire_timeout(Duration::from_millis(1)),
        );
        let handle = GovernorHandle(Arc::clone(&gov));
        let mut r1 = handle.reservation();
        assert!(r1.covers(10), "tiny claim takes one chunk");
        assert_eq!(gov.gauges().live_tuples, RESERVE_CHUNK);
        assert!(r1.covers(RESERVE_CHUNK), "already covered: no growth");
        assert_eq!(gov.gauges().live_tuples, RESERVE_CHUNK);

        let mut r2 = handle.reservation();
        assert!(r2.covers(2 * RESERVE_CHUNK), "pool has room for two more");
        assert_eq!(gov.gauges().live_tuples, 3 * RESERVE_CHUNK);

        // The pool is now exactly full: any further growth fails after the
        // bounded backoff…
        assert!(!r1.covers(RESERVE_CHUNK + 1));
        // …and dropping a reservation returns its whole claim.
        drop(r2);
        assert_eq!(gov.gauges().live_tuples, RESERVE_CHUNK);
        assert!(r1.covers(RESERVE_CHUNK + 1), "freed capacity is reusable");
        drop(r1);
        assert_eq!(gov.gauges().live_tuples, 0);
    }

    #[test]
    fn saturated_pool_rejects_at_admission() {
        let gov = ResourceGovernor::new(
            GovernorConfig::default()
                .with_max_live_tuples(RESERVE_CHUNK)
                .with_acquire_timeout(Duration::from_millis(1)),
        );
        let handle = GovernorHandle(Arc::clone(&gov));
        let mut r = handle.reservation();
        assert!(r.covers(1));
        assert!(matches!(gov.admit(), Err(OmegaError::Overloaded { .. })));
        drop(r);
        assert!(gov.admit().is_ok());
    }

    #[test]
    fn join_buffer_gauge_tracks_deltas() {
        let gov = ResourceGovernor::unlimited();
        gov.adjust_join_buffer(5);
        gov.adjust_join_buffer(3);
        assert_eq!(gov.gauges().join_buffer_entries, 8);
        gov.adjust_join_buffer(-8);
        assert_eq!(gov.gauges().join_buffer_entries, 0);
    }
}
