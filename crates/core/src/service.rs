//! The service-oriented query API: [`Database`], [`PreparedQuery`],
//! [`ExecOptions`] and [`Answers`].
//!
//! The paper frames Omega as an interactive service answering flexible
//! queries incrementally; this module is the concurrency-ready surface for
//! that framing:
//!
//! * [`Database`] — a cheaply clonable, `Send + Sync` handle over the frozen
//!   graph and ontology. Clone it into as many threads as you like; every
//!   clone shares the same CSR arrays and the same prepared-statement cache.
//! * [`PreparedQuery`] — a query parsed, validated and compiled once
//!   (Thompson NFA, APPROX/RELAX augmentation, ε-removal, conjunct plans,
//!   decomposed alternation branches) and executable any number of times,
//!   from any thread, without recompilation. [`Database::prepare`] keeps an
//!   LRU cache of prepared queries keyed by query text.
//! * [`ExecOptions`] — per-request execution control: answer limit,
//!   wall-clock deadline, distance ceiling, tuple budget and optimisation
//!   toggles. Requests never mutate engine state, so concurrent requests
//!   with different options are safe by construction.
//! * [`Answers`] — a streaming `Iterator<Item = Result<Answer>>` over the
//!   ranked answer sequence, carrying [`EvalStats`] and enforcing the
//!   request's limit, deadline and distance ceiling.
//!
//! ## Snapshot persistence
//!
//! The graph is static once frozen, so build it once:
//! [`Database::save_snapshot`] serialises the frozen CSR graph, the string
//! dictionaries and the ontology (with its interned closures) into a single
//! versioned, checksummed image, and [`Database::open_snapshot`] /
//! [`Database::open_snapshot_with`] memory-map it back with zero-copy array
//! views — answers, order and statistics are bit-identical to a rebuilt
//! database, while open time is page-cache warm-up instead of a re-ingest.
//! Corrupt images fail with a typed [`SnapshotError`].
//!
//! ## Parallel conjunct evaluation
//!
//! Multi-conjunct queries rank-join independent per-conjunct streams, so
//! those streams can be produced on worker threads while the join consumes
//! them on the caller's thread. Enable it per request with
//! [`ExecOptions::with_parallel_conjuncts`] (or database-wide via
//! [`EvalOptions::with_parallel_conjuncts`]); workers come from a small
//! pool shared by every clone of the [`Database`]. The guarantees:
//!
//! * **Answer-identical**: the same tuples, in the same rank order, with
//!   the same deterministic tie-breaking — parallelism changes wall-clock
//!   behaviour only. Errors (`ResourceExhausted`, `DeadlineExceeded`)
//!   surface at the same stream positions.
//! * **Prompt cancellation**: each execution carries a shared
//!   [`crate::eval::CancelToken`]; deadlines, `max_tuples`, limits and
//!   dropping the [`Answers`] stream all cancel outstanding workers within
//!   the evaluators' check interval, and the stream joins its workers so no
//!   thread outlives it.
//! * **Merged statistics**: [`Answers::stats`] aggregates worker counters;
//!   on fully drained executions it equals the sequential counts exactly.
//!
//! ```
//! use omega_core::{Database, ExecOptions};
//! use omega_graph::GraphStore;
//! use omega_ontology::Ontology;
//!
//! let mut graph = GraphStore::new();
//! graph.add_triple("alice", "knows", "bob");
//! graph.add_triple("bob", "worksAt", "acme");
//! let db = Database::new(graph, Ontology::new());
//! let prepared = db.prepare("(?X, ?W) <- (?X, knows, ?Y), (?Y, worksAt, ?W)").unwrap();
//!
//! let sequential = prepared.execute(&ExecOptions::new()).unwrap();
//! let parallel = prepared
//!     .execute(&ExecOptions::new().with_parallel_conjuncts(true))
//!     .unwrap();
//! assert_eq!(sequential, parallel);
//! ```
//!
//! ```
//! use omega_core::{Database, ExecOptions};
//! use omega_graph::GraphStore;
//! use omega_ontology::Ontology;
//!
//! let mut graph = GraphStore::new();
//! graph.add_triple("alice", "knows", "bob");
//! graph.add_triple("bob", "knows", "carol");
//! let db = Database::new(graph, Ontology::new());
//!
//! // One-shot execution…
//! let answers = db
//!     .execute("(?X) <- (alice, knows+, ?X)", &ExecOptions::new())
//!     .unwrap();
//! assert_eq!(answers.len(), 2);
//!
//! // …or prepare once and stream, with per-request control.
//! let prepared = db.prepare("(?X) <- (alice, knows+, ?X)").unwrap();
//! let request = ExecOptions::new().with_limit(1);
//! let first: Vec<_> = prepared.answers(&request).collect();
//! assert_eq!(first.len(), 1);
//! ```

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use omega_graph::snapshot::{SnapshotReader, SnapshotWriter};
use omega_graph::{FxHashSet, GraphStore, NodeId, SnapshotError};
use omega_ontology::Ontology;

use crate::answer::Answer;
use crate::error::{OmegaError, Result};
use crate::eval::cancel::CancelToken;
use crate::eval::disjunction::compile_branches;
use crate::eval::fault::{fire as fault_fire, FaultPoint};
use crate::eval::parallel::{ParallelStream, StreamPlan, WorkerPool};
use crate::eval::plan::{compile_conjunct, ConjunctPlan};
use crate::eval::rank_join::{JoinInput, RankJoin};
use crate::eval::{AnswerStream, EvalOptions, EvalStats};
use crate::govern::{ExecutionPermit, GovernorConfig, GovernorHandle, ResourceGovernor};
use crate::query::ast::{Query, QueryMode, Term};
use crate::query::parser::parse_query;

pub use crate::eval::options::OverloadPolicy;

/// Default capacity of the per-database prepared-statement LRU cache.
const PREPARED_CACHE_CAPACITY: usize = 128;

/// The immutable storage a database serves queries against: the frozen CSR
/// graph plus its ontology. Shared by every handle, prepared query and
/// reconfigured view through one `Arc`.
pub(crate) struct GraphData {
    pub(crate) graph: GraphStore,
    pub(crate) ontology: Ontology,
}

struct DbInner {
    data: Arc<GraphData>,
    options: Arc<EvalOptions>,
    cache: Mutex<PreparedCache>,
    /// Shared conjunct worker pool: parallel executions reuse parked threads
    /// instead of spawning per conjunct.
    pool: Arc<WorkerPool>,
    /// The database-wide resource governor: every execution against this
    /// storage — from any clone or reconfigured view — is admitted by it and
    /// draws its live tuples from its shared pool.
    govern: Arc<ResourceGovernor>,
}

/// A shared, thread-safe handle over one graph + ontology.
///
/// Cloning is an `Arc` bump: hand clones to worker threads and serve queries
/// from all of them concurrently. The graph is frozen into its CSR
/// representation on construction and never mutated afterwards.
#[derive(Clone)]
pub struct Database {
    inner: Arc<DbInner>,
}

impl Database {
    /// Creates a database with default [`EvalOptions`].
    pub fn new(graph: GraphStore, ontology: Ontology) -> Database {
        Database::with_options(graph, ontology, EvalOptions::default())
    }

    /// Creates a database with explicit base options.
    ///
    /// The base options fix the query *semantics* (edit/relaxation costs,
    /// inference) that prepared plans are compiled against; per-request
    /// execution knobs are supplied through [`ExecOptions`] instead.
    pub fn with_options(graph: GraphStore, ontology: Ontology, options: EvalOptions) -> Database {
        Database::with_governor(graph, ontology, options, GovernorConfig::default())
    }

    /// Creates a database whose executions are admitted and budgeted by a
    /// [`ResourceGovernor`] built from `config`.
    ///
    /// The governor is database-wide: concurrent executions from any clone
    /// of this handle (or any [`Database::reconfigured`] view) share one
    /// live-tuple pool, one admission gate and one concurrency ceiling.
    pub fn with_governor(
        mut graph: GraphStore,
        mut ontology: Ontology,
        options: EvalOptions,
        config: GovernorConfig,
    ) -> Database {
        graph.freeze();
        // Interning the ontology closures makes the RDFS-inference paths
        // allocation-free; idempotent (snapshot-loaded ontologies arrive
        // frozen).
        ontology.freeze();
        Database {
            inner: Arc::new(DbInner {
                data: Arc::new(GraphData { graph, ontology }),
                options: Arc::new(options),
                cache: Mutex::new(PreparedCache::new(PREPARED_CACHE_CAPACITY)),
                pool: WorkerPool::with_default_size(),
                govern: ResourceGovernor::new(config),
            }),
        }
    }

    /// A new handle over the *same* graph and ontology with different base
    /// options and a fresh prepared-statement cache. The storage is shared,
    /// not copied.
    pub fn reconfigured(&self, options: EvalOptions) -> Database {
        Database {
            inner: Arc::new(DbInner {
                data: Arc::clone(&self.inner.data),
                options: Arc::new(options),
                cache: Mutex::new(PreparedCache::new(PREPARED_CACHE_CAPACITY)),
                pool: Arc::clone(&self.inner.pool),
                govern: Arc::clone(&self.inner.govern),
            }),
        }
    }

    /// The database-wide resource governor: inspect its gauges, or hold the
    /// `Arc` to watch saturation from a monitoring thread.
    pub fn governor(&self) -> &Arc<ResourceGovernor> {
        &self.inner.govern
    }

    /// The data graph.
    pub fn graph(&self) -> &GraphStore {
        &self.inner.data.graph
    }

    /// The ontology.
    pub fn ontology(&self) -> &Ontology {
        &self.inner.data.ontology
    }

    /// The base evaluation options prepared queries compile against.
    pub fn options(&self) -> &EvalOptions {
        &self.inner.options
    }

    /// The shared storage handle (graph + ontology), for execution paths
    /// that hand clones to conjunct worker threads.
    pub(crate) fn data(&self) -> &Arc<GraphData> {
        &self.inner.data
    }

    /// The shared conjunct worker pool.
    pub(crate) fn pool(&self) -> &Arc<WorkerPool> {
        &self.inner.pool
    }

    /// Parses, validates and compiles `text` into a [`PreparedQuery`],
    /// consulting the prepared-statement cache first.
    pub fn prepare(&self, text: &str) -> Result<PreparedQuery> {
        // The cache critical sections never panic, but a poisoned lock must
        // not take the whole database down with it: recover the guard.
        if let Some(hit) = self
            .inner
            .cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(text)
        {
            return Ok(hit);
        }
        let prepared = self.prepare_uncached(text)?;
        self.inner
            .cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(text.to_owned(), prepared.clone());
        Ok(prepared)
    }

    /// Parses and compiles `text` without touching the cache.
    pub fn prepare_uncached(&self, text: &str) -> Result<PreparedQuery> {
        let query = parse_query(text)?;
        self.prepare_query(&query)
    }

    /// Compiles an already parsed query (uncached).
    pub fn prepare_query(&self, query: &Query) -> Result<PreparedQuery> {
        let inner = compile_prepared(
            query,
            &self.inner.data.graph,
            &self.inner.data.ontology,
            &self.inner.options,
        )?;
        Ok(PreparedQuery {
            data: Arc::clone(&self.inner.data),
            base: Arc::clone(&self.inner.options),
            pool: Arc::clone(&self.inner.pool),
            govern: Arc::clone(&self.inner.govern),
            inner: Arc::new(inner),
        })
    }

    /// Prepares (with caching) and executes `text` under `request`,
    /// collecting the answers.
    pub fn execute(&self, text: &str, request: &ExecOptions) -> Result<Vec<Answer>> {
        self.prepare(text)?.execute(request)
    }

    /// Number of entries currently in the prepared-statement cache.
    pub fn prepared_cache_len(&self) -> usize {
        self.inner
            .cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entries
            .len()
    }

    // ------------------------------------------------------------------
    // Snapshot persistence
    // ------------------------------------------------------------------

    /// Serialises the frozen graph and ontology into a single snapshot
    /// image at `path` (written atomically via a temp file).
    ///
    /// The image holds every CSR offset/neighbour array, the node and
    /// edge-label dictionaries, and the ontology hierarchies with their
    /// interned closures, in the versioned checksummed container documented
    /// in [`omega_graph::snapshot`]. Build once, then have every later
    /// process [`Database::open_snapshot`] the file in milliseconds instead
    /// of re-ingesting and re-freezing the graph.
    pub fn save_snapshot<P: AsRef<std::path::Path>>(
        &self,
        path: P,
    ) -> std::result::Result<(), SnapshotError> {
        let mut writer = SnapshotWriter::new();
        omega_graph::snapshot::write_graph_sections(&self.inner.data.graph, &mut writer)?;
        omega_ontology::snapshot::write_ontology_section(&self.inner.data.ontology, &mut writer)?;
        writer.write_to(path.as_ref())
    }

    /// Opens a snapshot image with default [`EvalOptions`].
    ///
    /// See [`Database::open_snapshot_with`].
    pub fn open_snapshot<P: AsRef<std::path::Path>>(
        path: P,
    ) -> std::result::Result<Database, SnapshotError> {
        Database::open_snapshot_with(path, EvalOptions::default())
    }

    /// Opens a snapshot image written by [`Database::save_snapshot`],
    /// memory-mapping the CSR arrays in place.
    ///
    /// The database answers queries **bit-identically** to one rebuilt from
    /// the original graph and ontology — same answers, same order, same
    /// [`EvalStats`] — but opening costs page-cache warm-up plus the node
    /// hash-index rebuild rather than a full ingest. The mapping is held
    /// alive by the database's shared inner `Arc`, so clones, prepared
    /// queries and streamed answers all keep it valid; dropping the last
    /// handle unmaps the file.
    ///
    /// Corruption never panics: a wrong magic, an unsupported format
    /// version, a truncated file or a failed section checksum each surface
    /// as the corresponding typed [`SnapshotError`].
    pub fn open_snapshot_with<P: AsRef<std::path::Path>>(
        path: P,
        options: EvalOptions,
    ) -> std::result::Result<Database, SnapshotError> {
        Database::open_snapshot_with_governor(path, options, GovernorConfig::default())
    }

    /// [`Database::open_snapshot_with`] plus an explicit [`GovernorConfig`],
    /// for serving deployments that open an image *and* bound admission.
    pub fn open_snapshot_with_governor<P: AsRef<std::path::Path>>(
        path: P,
        options: EvalOptions,
        config: GovernorConfig,
    ) -> std::result::Result<Database, SnapshotError> {
        if fault_fire(FaultPoint::SnapshotRead) {
            return Err(SnapshotError::Io("injected snapshot read fault".into()));
        }
        let reader = SnapshotReader::open(path.as_ref())?;
        let graph = omega_graph::snapshot::read_graph(&reader)?;
        let ontology = omega_ontology::snapshot::read_ontology_section(&reader)?;
        // `with_governor` re-freezes both, which is a no-op here: the graph
        // arrives with its (mapped) CSR and the ontology with its interned
        // closures.
        Ok(Database::with_governor(graph, ontology, options, config))
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("nodes", &self.graph().node_count())
            .field("edges", &self.graph().edge_count())
            .field("prepared", &self.prepared_cache_len())
            .finish()
    }
}

/// Least-recently-used map from query text to its prepared form. The entry
/// vector keeps most-recently-used entries at the back; capacity is small,
/// so the linear scan is cheaper than a hash + recency list would be.
struct PreparedCache {
    capacity: usize,
    entries: Vec<(String, PreparedQuery)>,
}

impl PreparedCache {
    fn new(capacity: usize) -> PreparedCache {
        PreparedCache {
            capacity: capacity.max(1),
            entries: Vec::new(),
        }
    }

    fn get(&mut self, text: &str) -> Option<PreparedQuery> {
        let pos = self.entries.iter().position(|(t, _)| t == text)?;
        self.entries[pos..].rotate_left(1);
        self.entries.last().map(|(_, prepared)| prepared.clone())
    }

    fn insert(&mut self, text: String, prepared: PreparedQuery) {
        if let Some(pos) = self.entries.iter().position(|(t, _)| *t == text) {
            self.entries.remove(pos);
        }
        self.entries.push((text, prepared));
        if self.entries.len() > self.capacity {
            self.entries.remove(0);
        }
    }
}

/// One compiled conjunct of a prepared query.
struct PreparedConjunct {
    plan: Arc<ConjunctPlan>,
    /// Branch plans for an APPROX top-level alternation, compiled lazily the
    /// first time a request enables the disjunction optimisation (so
    /// requests that never use it pay nothing) and then reused by every
    /// later execution, from any thread.
    branches: std::sync::OnceLock<Option<Vec<Arc<ConjunctPlan>>>>,
    subject_var: Option<String>,
    object_var: Option<String>,
    mode: QueryMode,
}

/// The compile-once state shared by every execution of a prepared query.
pub(crate) struct PreparedInner {
    query: Query,
    conjuncts: Vec<PreparedConjunct>,
}

/// Parses nothing, validates `query` and compiles every conjunct.
pub(crate) fn compile_prepared(
    query: &Query,
    graph: &GraphStore,
    ontology: &Ontology,
    options: &EvalOptions,
) -> Result<PreparedInner> {
    query.validate()?;
    let mut conjuncts = Vec::with_capacity(query.conjuncts.len());
    for conjunct in &query.conjuncts {
        let plan = Arc::new(compile_conjunct(conjunct, graph, ontology, options)?);
        conjuncts.push(PreparedConjunct {
            plan,
            branches: std::sync::OnceLock::new(),
            subject_var: conjunct.subject.as_variable().map(str::to_owned),
            object_var: conjunct.object.as_variable().map(str::to_owned),
            mode: conjunct.mode,
        });
    }
    Ok(PreparedInner {
        query: query.clone(),
        conjuncts,
    })
}

impl PreparedInner {
    /// Builds the ranked answer stream for one execution.
    ///
    /// Every execution gets a fresh shared [`CancelToken`] (unless the
    /// caller installed one in `options`): the conjunct evaluators —
    /// sequential or on worker threads — poll it, and the returned
    /// [`Answers`] triggers it when the stream finishes, fails or is
    /// dropped, so no conjunct worker outlives its execution.
    ///
    /// With `parallel_conjuncts` on and more than one conjunct, up to
    /// `parallel_workers` conjuncts (all of them when `0`) are evaluated on
    /// worker threads feeding bounded channels; the ranked join consumes
    /// those channels on the caller's thread in exactly the sequential
    /// order, so the answer sequence is bit-identical either way.
    pub(crate) fn answers<'a>(
        &self,
        data: &'a Arc<GraphData>,
        pool: &Arc<WorkerPool>,
        govern: &Arc<ResourceGovernor>,
        mut options: EvalOptions,
        limit: Option<usize>,
    ) -> Answers<'a> {
        // Admission: the governor gates every execution before any evaluator
        // state is built. Under `Shed` a rejected request backs off once,
        // shrinks its budgets and retries; otherwise the typed
        // `Overloaded` error is deferred to the stream's first pull
        // (`answers` is infallible by signature).
        let mut sheds = 0u64;
        let permit = loop {
            match govern.admit() {
                Ok(permit) => break permit,
                Err(err) => {
                    if options.on_overload == OverloadPolicy::Shed && sheds == 0 {
                        sheds = 1;
                        if let OmegaError::Overloaded { retry_after } = err {
                            std::thread::sleep(retry_after);
                        }
                        if let Some(max) = options.max_tuples {
                            options.max_tuples = Some((max / 2).max(1));
                        }
                        options.max_psi_steps = (options.max_psi_steps / 2).max(1);
                        continue;
                    }
                    return Answers::rejected(&data.graph, err, sheds);
                }
            }
        };
        // Evaluators draw their live-tuple reservations from the shared pool
        // through this handle.
        options.govern = Some(GovernorHandle(Arc::clone(govern)));
        // Every execution gets its own token; a caller-installed base token
        // becomes the parent (an external kill switch), so finishing this
        // execution never poisons the base options for later queries.
        let cancel = match &options.cancel {
            Some(external) => external.child(),
            None => CancelToken::new(),
        };
        options.cancel = Some(cancel.clone());
        let options = Arc::new(options);
        let graph = &data.graph;
        let ontology = &data.ontology;
        let parallel = options.parallel_conjuncts && self.conjuncts.len() > 1;
        let worker_budget = if options.parallel_workers == 0 {
            self.conjuncts.len()
        } else {
            options.parallel_workers
        };
        // Stats-driven stream ordering (cost-guided): most selective
        // conjunct first, by the compile-time seed-cardinality estimate.
        // The join drains earlier inputs first on distance ties, so sparse
        // streams buffering fully before the big ones keeps probe work
        // small; answer *sets* are order-independent. Stable sort: equal
        // estimates keep the query's syntactic order.
        let mut order: Vec<usize> = (0..self.conjuncts.len()).collect();
        if options.cost_guided && self.conjuncts.len() > 1 {
            order.sort_by_key(|&i| self.conjuncts[i].plan.estimated_seed_count);
        }
        let inputs = order
            .iter()
            .enumerate()
            .map(|(pos, &i)| {
                let pc = &self.conjuncts[i];
                let plan = stream_plan(pc, &self.query.conjuncts[i], graph, ontology, &options);
                let stream: Box<dyn AnswerStream + 'a> = if parallel && pos < worker_budget {
                    match ParallelStream::spawn(plan, Arc::clone(data), Arc::clone(&options), pool)
                    {
                        Ok(stream) => Box::new(stream),
                        // Spawn failure (thread exhaustion): evaluate this
                        // conjunct inline — same answers, no parallelism.
                        Err(plan) => plan.materialize(graph, ontology, Arc::clone(&options)),
                    }
                } else {
                    plan.materialize(graph, ontology, Arc::clone(&options))
                };
                JoinInput::new(stream, pc.subject_var.clone(), pc.object_var.clone())
            })
            .collect();
        let mut join = RankJoin::new(inputs);
        // Head variables resolve to join slot indices exactly once per
        // execution; projection and deduplication then work on dense
        // node-id tuples, never on name-keyed bindings.
        // Validation guarantees every head variable occurs in some conjunct;
        // the expect documents that invariant rather than a runtime failure
        // mode.
        #[allow(clippy::expect_used)]
        let head_slots: Vec<usize> = self
            .query
            .head
            .iter()
            .map(|v| {
                join.slot_index(v)
                    .expect("validated head variable occurs in some conjunct")
            })
            .collect();
        // Top-k threshold pushdown: when every join slot is projected, the
        // projection-level deduplication can never consume a join answer,
        // so the request's limit bounds the join answers needed and streams
        // provably past the k-th distance stop being pulled.
        if options.cost_guided {
            let mut distinct = head_slots.clone();
            distinct.sort_unstable();
            distinct.dedup();
            if distinct.len() == join.slot_names().len() {
                join.set_limit(limit);
            }
        }
        Answers {
            graph,
            join,
            head: self.query.head.clone(),
            head_slots,
            emitted: FxHashSet::default(),
            limit,
            yielded: 0,
            max_distance: options.max_distance,
            deadline: options.deadline,
            cancel,
            finished: false,
            pending: None,
            permit: Some(permit),
            govern: Some(Arc::clone(govern)),
            buffered: 0,
            sheds,
        }
    }
}

/// Chooses the evaluator recipe for one conjunct according to the request
/// options. Selection (and branch-plan compilation/caching) always happens
/// on the caller's thread; the returned [`StreamPlan`] is materialised
/// either inline or inside a conjunct worker.
fn stream_plan(
    pc: &PreparedConjunct,
    conjunct: &crate::query::ast::Conjunct,
    graph: &GraphStore,
    ontology: &Ontology,
    options: &Arc<EvalOptions>,
) -> StreamPlan {
    if options.disjunction_decomposition && pc.mode == QueryMode::Approx {
        // Branch plans compile on first use and are cached for every later
        // execution. A compile failure cannot happen once the main plan
        // compiled (same constants, same costs); if it somehow did, falling
        // back to plain evaluation is still correct — decomposition is an
        // optimisation, not a semantics change.
        let branches = pc.branches.get_or_init(|| {
            match compile_branches(conjunct, graph, ontology, options) {
                Ok(branches) => branches,
                Err(e) => {
                    debug_assert!(false, "branch compile failed after main plan compiled: {e}");
                    None
                }
            }
        });
        if let Some(branches) = branches {
            return StreamPlan::Disjunction(branches.clone());
        }
    }
    if options.distance_aware && pc.mode != QueryMode::Exact {
        return StreamPlan::DistanceAware(Arc::clone(&pc.plan));
    }
    StreamPlan::Plain(Arc::clone(&pc.plan))
}

/// A query compiled once and executable many times, from many threads.
///
/// `PreparedQuery` is `Send + Sync` and cheap to clone: it shares the frozen
/// graph, the base options and the compiled plans through `Arc`s. Each
/// [`PreparedQuery::answers`] call builds fresh evaluator state, so
/// concurrent executions never interfere.
#[derive(Clone)]
pub struct PreparedQuery {
    data: Arc<GraphData>,
    base: Arc<EvalOptions>,
    pool: Arc<WorkerPool>,
    govern: Arc<ResourceGovernor>,
    inner: Arc<PreparedInner>,
}

impl PreparedQuery {
    /// The parsed query this statement was compiled from.
    pub fn query(&self) -> &Query {
        &self.inner.query
    }

    /// Streams the ranked answers for one execution under `request`.
    pub fn answers(&self, request: &ExecOptions) -> Answers<'_> {
        let options = request.resolve(&self.base);
        self.inner
            .answers(&self.data, &self.pool, &self.govern, options, request.limit)
    }

    /// Executes under `request` and collects the answers.
    pub fn execute(&self, request: &ExecOptions) -> Result<Vec<Answer>> {
        self.answers(request).collect_up_to(None)
    }

    /// Whether `self` and `other` share the same compiled plans (i.e. one
    /// came from the other through the prepared-statement cache or `clone`).
    pub fn shares_plans_with(&self, other: &PreparedQuery) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl std::fmt::Debug for PreparedQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedQuery")
            .field("conjuncts", &self.inner.conjuncts.len())
            .field("head", &self.inner.query.head)
            .finish()
    }
}

/// Per-request execution options: a builder carried alongside the query, so
/// concurrent requests against one [`Database`] can each bring their own
/// limit, deadline and toggles without touching shared state.
///
/// Every field is an *override*: unset fields inherit the database's base
/// [`EvalOptions`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecOptions {
    /// Maximum number of answers to return (`None` = all).
    pub limit: Option<usize>,
    /// Wall-clock budget measured from the start of execution.
    pub timeout: Option<Duration>,
    /// Absolute wall-clock deadline; the tighter of `timeout` and `deadline`
    /// wins when both are set.
    pub deadline: Option<Instant>,
    /// Hard ceiling on answer distance.
    pub max_distance: Option<u32>,
    /// Live-tuple budget override (see [`EvalOptions::max_tuples`]).
    pub max_tuples: Option<usize>,
    /// Distance-aware retrieval toggle override.
    pub distance_aware: Option<bool>,
    /// Alternation→disjunction decomposition toggle override.
    pub disjunction_decomposition: Option<bool>,
    /// Initial-node batch size override.
    pub batch_size: Option<usize>,
    /// Final-tuple prioritisation override.
    pub prioritize_final: Option<bool>,
    /// Parallel conjunct evaluation override (see
    /// [`EvalOptions::parallel_conjuncts`]).
    pub parallel_conjuncts: Option<bool>,
    /// Conjunct worker budget override (`0` = one worker per conjunct).
    pub parallel_workers: Option<usize>,
    /// Per-worker answer channel capacity override.
    pub parallel_channel_capacity: Option<usize>,
    /// Cost-guided evaluation override (see [`EvalOptions::cost_guided`]).
    pub cost_guided: Option<bool>,
    /// Overload policy override: what happens when a resource budget trips
    /// mid-query or the governor rejects the execution at admission (see
    /// [`OverloadPolicy`]).
    pub on_overload: Option<OverloadPolicy>,
}

impl ExecOptions {
    /// Request with no overrides: the database's base options, no limit, no
    /// deadline.
    pub fn new() -> ExecOptions {
        ExecOptions::default()
    }

    /// Returns at most `limit` answers.
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Aborts evaluation [`OmegaError::DeadlineExceeded`] once `timeout` has
    /// elapsed from the start of execution.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Aborts evaluation at the absolute instant `deadline`.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Ignores answers (and prunes exploration) beyond distance `max`.
    pub fn with_max_distance(mut self, max: u32) -> Self {
        self.max_distance = Some(max);
        self
    }

    /// Overrides the live-tuple budget.
    pub fn with_max_tuples(mut self, max: usize) -> Self {
        self.max_tuples = Some(max);
        self
    }

    /// Overrides the distance-aware retrieval toggle.
    pub fn with_distance_aware(mut self, on: bool) -> Self {
        self.distance_aware = Some(on);
        self
    }

    /// Overrides the alternation→disjunction decomposition toggle.
    pub fn with_disjunction_decomposition(mut self, on: bool) -> Self {
        self.disjunction_decomposition = Some(on);
        self
    }

    /// Overrides the initial-node batch size.
    pub fn with_batch_size(mut self, batch: usize) -> Self {
        self.batch_size = Some(batch);
        self
    }

    /// Overrides final-tuple prioritisation.
    pub fn with_prioritize_final(mut self, on: bool) -> Self {
        self.prioritize_final = Some(on);
        self
    }

    /// Evaluates the conjuncts of a multi-conjunct query on parallel worker
    /// threads. The answer sequence is identical to sequential evaluation —
    /// same tuples, same rank order — only wall-clock behaviour changes.
    pub fn with_parallel_conjuncts(mut self, on: bool) -> Self {
        self.parallel_conjuncts = Some(on);
        self
    }

    /// Caps the number of conjunct worker threads (`0` = one per conjunct).
    pub fn with_parallel_workers(mut self, workers: usize) -> Self {
        self.parallel_workers = Some(workers);
        self
    }

    /// Overrides the per-worker answer channel capacity.
    pub fn with_parallel_channel_capacity(mut self, capacity: usize) -> Self {
        self.parallel_channel_capacity = Some(capacity);
        self
    }

    /// Enables or disables cost-guided evaluation (A* queue ordering,
    /// bound/dead-state pruning, deferred expansion, stats-driven planning)
    /// for this request. Answer sets, distances and the non-decreasing
    /// distance order are identical either way; only work changes.
    pub fn with_cost_guided(mut self, on: bool) -> Self {
        self.cost_guided = Some(on);
        self
    }

    /// Selects what happens under resource pressure: fail with a typed
    /// error (default), degrade to the already-proven answer prefix, or
    /// shed load (shrink budgets, back off, retry admission once).
    pub fn with_on_overload(mut self, policy: OverloadPolicy) -> Self {
        self.on_overload = Some(policy);
        self
    }

    /// Folds the overrides into `base`, resolving the relative timeout into
    /// an absolute deadline at call time (i.e. execution start).
    pub(crate) fn resolve(&self, base: &EvalOptions) -> EvalOptions {
        let mut options = base.clone();
        if let Some(max) = self.max_tuples {
            options.max_tuples = Some(max);
        }
        if let Some(on) = self.distance_aware {
            options.distance_aware = on;
        }
        if let Some(on) = self.disjunction_decomposition {
            options.disjunction_decomposition = on;
        }
        if let Some(batch) = self.batch_size {
            options.batch_size = batch.max(1);
        }
        if let Some(on) = self.prioritize_final {
            options.prioritize_final = on;
        }
        if let Some(on) = self.parallel_conjuncts {
            options.parallel_conjuncts = on;
        }
        if let Some(workers) = self.parallel_workers {
            options.parallel_workers = workers;
        }
        if let Some(capacity) = self.parallel_channel_capacity {
            options.parallel_channel_capacity = capacity.max(1);
        }
        if let Some(on) = self.cost_guided {
            options.cost_guided = on;
        }
        if let Some(policy) = self.on_overload {
            options.on_overload = policy;
        }
        if self.max_distance.is_some() {
            options.max_distance = self.max_distance;
        }
        let from_timeout = self.timeout.map(|t| Instant::now() + t);
        options.deadline = match (self.deadline, from_timeout) {
            (Some(d), Some(t)) => Some(d.min(t)),
            (Some(d), None) => Some(d),
            (None, Some(t)) => Some(t),
            (None, None) => base.deadline,
        };
        options
    }
}

/// A streaming handle over one execution's ranked answers.
///
/// Yields answers in non-decreasing total-distance order, enforcing the
/// request's limit, distance ceiling and deadline. Implements
/// `Iterator<Item = Result<Answer>>`; after an error or exhaustion the
/// stream is fused.
///
/// The handle owns the execution's shared [`CancelToken`]: it is triggered
/// as soon as the stream finishes (limit reached, exhausted, or failed) and
/// on drop, which promptly stops any parallel conjunct workers still
/// producing — their threads are then joined when the stream's join inputs
/// drop.
pub struct Answers<'a> {
    graph: &'a GraphStore,
    join: RankJoin<'a>,
    /// Head variable names, in projection order.
    head: Vec<String>,
    /// Join slot of each head variable, resolved once at stream creation.
    head_slots: Vec<usize>,
    /// Projection-level deduplication over head-slot node-id tuples.
    emitted: FxHashSet<Vec<NodeId>>,
    limit: Option<usize>,
    yielded: usize,
    max_distance: Option<u32>,
    deadline: Option<Instant>,
    /// The execution's shared cancellation token.
    cancel: CancelToken,
    finished: bool,
    /// Admission failure deferred to the first pull (the constructor is
    /// infallible by signature).
    pending: Option<OmegaError>,
    /// Concurrency-slot permit; released when the stream finishes or drops.
    permit: Option<ExecutionPermit>,
    /// Governor whose join-buffer gauge mirrors this stream's buffered
    /// entries (`None` for rejected streams that never ran).
    govern: Option<Arc<ResourceGovernor>>,
    /// Last buffered-entry count pushed into the governor's gauge.
    buffered: usize,
    /// Shed retries performed at admission, surfaced through
    /// [`Answers::stats`].
    sheds: u64,
}

impl<'a> Answers<'a> {
    /// An inert stream standing in for an execution the governor rejected:
    /// its first pull returns the admission error, then it is fused.
    fn rejected(graph: &'a GraphStore, err: OmegaError, sheds: u64) -> Answers<'a> {
        Answers {
            graph,
            join: RankJoin::new(Vec::new()),
            head: Vec::new(),
            head_slots: Vec::new(),
            emitted: FxHashSet::default(),
            limit: None,
            yielded: 0,
            max_distance: None,
            deadline: None,
            cancel: CancelToken::new(),
            finished: false,
            pending: Some(err),
            permit: None,
            govern: None,
            buffered: 0,
            sheds,
        }
    }

    /// Marks the stream finished, cancels the execution's shared token so
    /// any parallel conjunct workers stop producing promptly, and returns
    /// the execution's governor resources (permit, gauge contribution).
    fn finish(&mut self) {
        self.finished = true;
        self.cancel.cancel();
        self.sync_buffer_gauge(true);
        self.permit = None;
    }

    /// Mirrors the rank join's buffered-entry count into the governor's
    /// gauge as a delta; `drain` pushes this stream's contribution back to
    /// zero when it ends.
    fn sync_buffer_gauge(&mut self, drain: bool) {
        let Some(govern) = &self.govern else { return };
        let now = if drain {
            0
        } else {
            self.join.buffered_entries()
        };
        if now != self.buffered {
            govern.adjust_join_buffer(now as isize - self.buffered as isize);
            self.buffered = now;
        }
    }

    /// The next answer, `Ok(None)` when the stream is exhausted (or the
    /// limit/distance ceiling has been reached).
    pub fn next_answer(&mut self) -> Result<Option<Answer>> {
        if self.finished {
            return Ok(None);
        }
        if let Some(err) = self.pending.take() {
            self.finish();
            return Err(err);
        }
        if self.limit.is_some_and(|l| self.yielded >= l) {
            self.finish();
            return Ok(None);
        }
        // The per-tuple deadline checks live in the conjunct evaluators;
        // this top-level check guarantees an already-expired deadline fails
        // before any join work happens at all.
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.finish();
                return Err(OmegaError::DeadlineExceeded);
            }
        }
        loop {
            let next = match self.join.get_next_slots() {
                Ok(next) => next,
                Err(e) => {
                    self.finish();
                    return Err(e);
                }
            };
            self.sync_buffer_gauge(false);
            let Some((bindings, distance)) = next else {
                self.finish();
                return Ok(None);
            };
            if self.max_distance.is_some_and(|max| distance > max) {
                // Total distances are non-decreasing: nothing later can
                // come back under the ceiling.
                self.finish();
                return Ok(None);
            }
            // Project onto the head slots and deduplicate projections. The
            // join only emits candidates with every slot bound, so the
            // expect documents that invariant, not a runtime failure mode.
            #[allow(clippy::expect_used)]
            let key: Vec<NodeId> = self
                .head_slots
                .iter()
                .map(|&slot| bindings[slot].expect("every join candidate binds every slot"))
                .collect();
            if !self.emitted.insert(key.clone()) {
                continue;
            }
            let named: BTreeMap<String, String> = self
                .head
                .iter()
                .zip(key.iter())
                .map(|(var, node)| (var.clone(), self.graph.node_label(*node).to_owned()))
                .collect();
            self.yielded += 1;
            return Ok(Some(Answer {
                bindings: named,
                distance,
            }));
        }
    }

    /// Collects up to `limit` further answers (all remaining when `None`),
    /// on top of any stream-level limit.
    pub fn collect_up_to(&mut self, limit: Option<usize>) -> Result<Vec<Answer>> {
        let mut out = Vec::new();
        while limit.is_none_or(|l| out.len() < l) {
            match self.next_answer()? {
                Some(answer) => out.push(answer),
                None => break,
            }
        }
        Ok(out)
    }

    /// Evaluation statistics accumulated so far across all conjuncts,
    /// including shed retries performed at admission.
    pub fn stats(&self) -> EvalStats {
        let mut stats = self.join.stats();
        stats.sheds += self.sheds;
        stats
    }
}

impl Iterator for Answers<'_> {
    type Item = Result<Answer>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_answer().transpose()
    }
}

impl Drop for Answers<'_> {
    fn drop(&mut self) {
        // Abandoning the stream mid-flight cancels the execution; the join's
        // parallel inputs then join their workers as they drop. The gauge
        // contribution is returned here too (the permit's own `Drop` frees
        // the concurrency slot).
        self.cancel.cancel();
        self.sync_buffer_gauge(true);
    }
}

/// Convenience: the variables a conjunct binds, in `(subject, object)`
/// order, for callers that drive [`crate::eval::ConjunctEvaluator`]
/// directly.
pub fn conjunct_variables(conjunct: &crate::query::ast::Conjunct) -> Vec<&str> {
    [&conjunct.subject, &conjunct.object]
        .into_iter()
        .filter_map(Term::as_variable)
        .collect()
}

// `Database`, `PreparedQuery` and the request/stream types are the shared
// service surface: hold the compiler to it.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Database>();
    assert_send_sync::<PreparedQuery>();
    assert_send_sync::<ExecOptions>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut g = GraphStore::new();
        g.add_triple("alice", "knows", "bob");
        g.add_triple("bob", "knows", "carol");
        g.add_triple("carol", "knows", "dave");
        g.add_triple("alice", "worksAt", "acme");
        g.add_triple("bob", "worksAt", "initech");
        g.add_triple("acme", "locatedIn", "UK");
        g.add_triple("initech", "locatedIn", "US");
        g.add_triple("alice", "type", "Student");
        g.add_triple("bob", "type", "Person");
        let mut o = Ontology::new();
        let student = g.node_by_label("Student").unwrap();
        let person = g.node_by_label("Person").unwrap();
        o.add_subclass(student, person).unwrap();
        Database::new(g, o)
    }

    #[test]
    fn database_executes_like_the_engine() {
        let db = db();
        let answers = db
            .execute("(?X) <- (alice, knows+, ?X)", &ExecOptions::new())
            .unwrap();
        assert_eq!(answers.len(), 3);
        assert!(answers.iter().all(|a| a.distance == 0));
    }

    #[test]
    fn prepare_hits_the_cache() {
        let db = db();
        let first = db.prepare("(?X) <- (alice, knows, ?X)").unwrap();
        let second = db.prepare("(?X) <- (alice, knows, ?X)").unwrap();
        assert!(first.shares_plans_with(&second));
        assert_eq!(db.prepared_cache_len(), 1);
        let uncached = db.prepare_uncached("(?X) <- (alice, knows, ?X)").unwrap();
        assert!(!first.shares_plans_with(&uncached));
    }

    #[test]
    fn lru_cache_evicts_oldest() {
        let mut cache = PreparedCache::new(2);
        let db = db();
        let p = db.prepare_uncached("(?X) <- (alice, knows, ?X)").unwrap();
        cache.insert("a".into(), p.clone());
        cache.insert("b".into(), p.clone());
        assert!(cache.get("a").is_some()); // refresh "a": now "b" is oldest
        cache.insert("c".into(), p.clone());
        assert!(cache.get("b").is_none());
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
    }

    #[test]
    fn prepared_query_executes_repeatedly() {
        let db = db();
        let prepared = db
            .prepare("(?X) <- APPROX (alice, worksAt.worksAt, ?X)")
            .unwrap();
        let first = prepared.execute(&ExecOptions::new()).unwrap();
        let second = prepared.execute(&ExecOptions::new()).unwrap();
        assert!(!first.is_empty());
        assert_eq!(first, second);
    }

    #[test]
    fn limit_and_iterator_agree() {
        let db = db();
        let prepared = db.prepare("(?X) <- (alice, knows+, ?X)").unwrap();
        let collected: Result<Vec<_>> = prepared
            .answers(&ExecOptions::new().with_limit(2))
            .collect();
        assert_eq!(collected.unwrap().len(), 2);
    }

    #[test]
    fn zero_timeout_deadline_fires() {
        let db = db();
        let prepared = db.prepare("(?X, ?Y) <- APPROX (?X, knows+, ?Y)").unwrap();
        let request = ExecOptions::new().with_timeout(Duration::ZERO);
        let mut answers = prepared.answers(&request);
        assert!(matches!(
            answers.next_answer(),
            Err(OmegaError::DeadlineExceeded)
        ));
        // The stream is fused after the error.
        assert!(answers.next().is_none());
    }

    #[test]
    fn absolute_deadline_in_the_past_fires() {
        let db = db();
        let request = ExecOptions::new().with_deadline(Instant::now());
        let err = db
            .execute("(?X) <- APPROX (alice, knows.knows, ?X)", &request)
            .unwrap_err();
        assert!(matches!(err, OmegaError::DeadlineExceeded));
    }

    #[test]
    fn max_distance_truncates_the_stream() {
        let db = db();
        let prepared = db
            .prepare("(?X) <- APPROX (alice, worksAt.worksAt, ?X)")
            .unwrap();
        let all = prepared.execute(&ExecOptions::new()).unwrap();
        assert!(all.iter().any(|a| a.distance > 1));
        let capped = prepared
            .execute(&ExecOptions::new().with_max_distance(1))
            .unwrap();
        assert!(capped.iter().all(|a| a.distance <= 1));
        let expected = all.iter().filter(|a| a.distance <= 1).count();
        assert_eq!(capped.len(), expected);
    }

    #[test]
    fn per_request_toggles_do_not_change_answers() {
        let db = db();
        let prepared = db
            .prepare("(?X) <- APPROX (alice, (knows.knows)|(worksAt.locatedIn), ?X)")
            .unwrap();
        let sort = |mut v: Vec<Answer>| {
            v.sort_by(|a, b| (&a.bindings, a.distance).cmp(&(&b.bindings, b.distance)));
            v
        };
        let reference = sort(prepared.execute(&ExecOptions::new()).unwrap());
        for request in [
            ExecOptions::new().with_distance_aware(true),
            ExecOptions::new().with_disjunction_decomposition(true),
            ExecOptions::new().with_batch_size(1),
            ExecOptions::new().with_prioritize_final(false),
        ] {
            assert_eq!(reference, sort(prepared.execute(&request).unwrap()));
        }
    }

    #[test]
    fn reconfigured_shares_storage() {
        let db = db();
        let relaxed = db.reconfigured(EvalOptions::default().with_max_tuples(Some(10)));
        assert_eq!(relaxed.options().max_tuples, Some(10));
        assert!(std::ptr::eq(db.graph(), relaxed.graph()));
    }

    #[test]
    fn concurrent_clones_answer_identically() {
        let db = db();
        let prepared = db
            .prepare("(?X) <- APPROX (alice, worksAt.worksAt, ?X)")
            .unwrap();
        let reference = prepared.execute(&ExecOptions::new()).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let prepared = prepared.clone();
                let reference = reference.clone();
                scope.spawn(move || {
                    let got = prepared.execute(&ExecOptions::new()).unwrap();
                    assert_eq!(got, reference);
                });
            }
        });
    }

    #[test]
    fn base_cancel_token_is_a_kill_switch_not_poisoned_by_completion() {
        let mut g = GraphStore::new();
        g.add_triple("alice", "knows", "bob");
        g.add_triple("bob", "worksAt", "acme");
        let token = CancelToken::new();
        let db = Database::with_options(
            g,
            Ontology::new(),
            EvalOptions::default().with_cancel_token(token.clone()),
        );
        let text = "(?X, ?W) <- (?X, knows, ?Y), (?Y, worksAt, ?W)";
        // Completed executions must not cancel the caller's base token…
        let first = db.execute(text, &ExecOptions::new()).unwrap();
        assert!(!token.is_cancelled());
        // …so later queries still run (sequentially and in parallel).
        let again = db
            .execute(text, &ExecOptions::new().with_parallel_conjuncts(true))
            .unwrap();
        assert_eq!(first, again);
        // Cancelling the base token kills subsequent executions.
        token.cancel();
        let err = db.execute(text, &ExecOptions::new()).unwrap_err();
        assert!(matches!(err, OmegaError::Cancelled));
    }

    #[test]
    fn max_tuples_override_aborts() {
        let db = db();
        let err = db
            .execute(
                "(?X, ?Y) <- APPROX (?X, knows+, ?Y)",
                &ExecOptions::new().with_max_tuples(3),
            )
            .unwrap_err();
        assert!(matches!(err, OmegaError::ResourceExhausted { .. }));
    }

    fn governed_db(config: GovernorConfig) -> Database {
        let mut g = GraphStore::new();
        g.add_triple("alice", "knows", "bob");
        g.add_triple("bob", "knows", "carol");
        g.add_triple("carol", "knows", "dave");
        g.add_triple("alice", "worksAt", "acme");
        g.add_triple("bob", "worksAt", "initech");
        g.add_triple("acme", "locatedIn", "UK");
        g.add_triple("initech", "locatedIn", "US");
        Database::with_governor(g, Ontology::new(), EvalOptions::default(), config)
    }

    #[test]
    fn governed_admission_rejects_with_typed_overloaded() {
        let db = governed_db(
            GovernorConfig::default()
                .with_max_concurrent(1)
                .with_retry_after(Duration::from_millis(7)),
        );
        let held = db.governor().admit().unwrap();
        let err = db
            .execute("(?X) <- (alice, knows+, ?X)", &ExecOptions::new())
            .unwrap_err();
        assert!(
            matches!(err, OmegaError::Overloaded { retry_after } if retry_after >= Duration::from_millis(7))
        );
        assert_eq!(db.governor().gauges().rejected, 1);
        drop(held);
        // The slot freed: the same query now runs.
        let answers = db
            .execute("(?X) <- (alice, knows+, ?X)", &ExecOptions::new())
            .unwrap();
        assert_eq!(answers.len(), 3);
    }

    #[test]
    fn degrade_returns_bit_identical_prefix() {
        let db = db();
        let text = "(?X, ?Y) <- APPROX (?X, knows+, ?Y)";
        let full = db.execute(text, &ExecOptions::new()).unwrap();
        assert!(!full.is_empty());
        // Fail (the default) aborts under the same budget…
        let capped = ExecOptions::new().with_max_tuples(3);
        assert!(db.execute(text, &capped).is_err());
        // …Degrade instead ends the stream cleanly with the proven prefix.
        let prepared = db.prepare(text).unwrap();
        let mut stream =
            prepared.answers(&capped.clone().with_on_overload(OverloadPolicy::Degrade));
        let partial = stream.collect_up_to(None).unwrap();
        let stats = stream.stats();
        assert!(stats.degraded, "degraded flag must be set");
        assert!(stats.truncation.is_some(), "truncation reason must be set");
        assert!(partial.len() < full.len());
        assert_eq!(
            partial[..],
            full[..partial.len()],
            "prefix must be bit-identical"
        );
    }

    #[test]
    fn shed_retries_once_then_surfaces_overload() {
        let db = governed_db(
            GovernorConfig::default()
                .with_max_concurrent(1)
                .with_retry_after(Duration::from_millis(1)),
        );
        let held = db.governor().admit().unwrap();
        // The slot stays taken: the shed retry also fails, so the typed
        // error surfaces — but exactly one shed attempt was made.
        let prepared = db.prepare("(?X) <- (alice, knows, ?X)").unwrap();
        let request = ExecOptions::new()
            .with_max_tuples(64)
            .with_on_overload(OverloadPolicy::Shed);
        let mut stream = prepared.answers(&request);
        assert!(matches!(
            stream.next_answer(),
            Err(OmegaError::Overloaded { .. })
        ));
        assert_eq!(stream.stats().sheds, 1);
        assert_eq!(db.governor().gauges().rejected, 2);
        drop(held);
        // With the slot free the shed path is never taken.
        let mut stream = prepared.answers(&request);
        let answers = stream.collect_up_to(None).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(stream.stats().sheds, 0);
    }

    #[test]
    fn shed_succeeds_when_the_slot_frees_during_backoff() {
        let db = governed_db(
            GovernorConfig::default()
                .with_max_concurrent(1)
                .with_retry_after(Duration::from_millis(250)),
        );
        let held = db.governor().admit().unwrap();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                drop(held);
            });
            let prepared = db.prepare("(?X) <- (alice, knows+, ?X)").unwrap();
            let mut stream =
                prepared.answers(&ExecOptions::new().with_on_overload(OverloadPolicy::Shed));
            let answers = stream.collect_up_to(None).unwrap();
            assert_eq!(answers.len(), 3, "shed retry must run the query");
            assert_eq!(stream.stats().sheds, 1);
        });
    }

    #[test]
    fn gauges_return_to_zero_after_execution() {
        let db = governed_db(
            GovernorConfig::default()
                .with_max_live_tuples(1 << 16)
                .with_max_concurrent(4),
        );
        let text = "(?X, ?W) <- (?X, knows, ?Y), (?Y, worksAt, ?W)";
        let prepared = db.prepare(text).unwrap();
        {
            let mut stream = prepared.answers(&ExecOptions::new());
            assert!(stream.next_answer().unwrap().is_some());
            let during = db.governor().gauges();
            assert_eq!(during.executions, 1);
            assert!(during.live_tuples > 0, "reservations drawn mid-query");
            // Abandon the stream mid-flight: Drop must return everything.
        }
        let after = db.governor().gauges();
        assert_eq!(after.executions, 0);
        assert_eq!(after.live_tuples, 0);
        assert_eq!(after.join_buffer_entries, 0);
    }

    #[test]
    fn reconfigured_shares_the_governor() {
        let db = governed_db(GovernorConfig::default().with_max_concurrent(2));
        let view = db.reconfigured(EvalOptions::default().with_max_tuples(Some(10)));
        assert!(Arc::ptr_eq(db.governor(), view.governor()));
    }
}
