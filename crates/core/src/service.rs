//! The service-oriented query API: [`Database`], [`PreparedQuery`],
//! [`ExecOptions`] and [`Answers`].
//!
//! The paper frames Omega as an interactive service answering flexible
//! queries incrementally; this module is the concurrency-ready surface for
//! that framing:
//!
//! * [`Database`] — a cheaply clonable, `Send + Sync` handle over the frozen
//!   graph and ontology. Clone it into as many threads as you like; every
//!   clone shares the same CSR arrays and the same prepared-statement cache.
//! * [`PreparedQuery`] — a query parsed, validated and compiled once
//!   (Thompson NFA, APPROX/RELAX augmentation, ε-removal, conjunct plans,
//!   decomposed alternation branches) and executable any number of times,
//!   from any thread, without recompilation. [`Database::prepare`] keeps an
//!   LRU cache of prepared queries keyed by query text.
//! * [`ExecOptions`] — per-request execution control: answer limit,
//!   wall-clock deadline, distance ceiling, tuple budget and optimisation
//!   toggles. Requests never mutate engine state, so concurrent requests
//!   with different options are safe by construction.
//! * [`Answers`] — a streaming `Iterator<Item = Result<Answer>>` over the
//!   ranked answer sequence, carrying [`EvalStats`] and enforcing the
//!   request's limit, deadline and distance ceiling.
//!
//! ## Live mutation and epochs
//!
//! The graph is frozen on construction, but not sealed: the database serves
//! a sequence of immutable storage *epochs*. [`Database::begin_mutation`]
//! collects edge additions/removals into a [`MutationBatch`];
//! [`Database::apply`] publishes the whole batch atomically as a new epoch
//! that layers the changes as a delta overlay over the *shared* base CSR —
//! the frozen arrays are never dropped or rebuilt on the write path.
//! Consistency is by pinning, not locking:
//!
//! * [`Database::graph`] returns a [`GraphRef`] pinning the current epoch;
//! * a [`PreparedQuery`] pins the epoch it was compiled against, so its
//!   executions — including [`Answers`] streams already in flight when a
//!   mutation lands — read one consistent graph and return bit-identical
//!   answers and statistics regardless of concurrent writes;
//! * the prepared-statement cache tags entries with their epoch: a stale
//!   entry is recompiled (fresh label statistics, seed estimates and accept
//!   bounds), never silently reused. Concurrent misses on the same text
//!   compile once; the other callers wait for the result.
//!
//! [`Database::compact`] folds the accumulated overlay into a fresh frozen
//! CSR off the read path and publishes it as the next epoch — readers are
//! never blocked, and answer semantics are unchanged. Run it periodically
//! under sustained writes to keep per-read overlay checks cheap.
//!
//! ## Snapshot persistence
//!
//! Within an epoch the graph is immutable, so build it once:
//! [`Database::save_snapshot`] compacts any live overlay, then serialises
//! the frozen CSR graph, the string dictionaries and the ontology (with its
//! interned closures) into a single versioned, checksummed image, and
//! [`Database::open_snapshot`] / [`Database::open_snapshot_with`]
//! memory-map it back with zero-copy array views — answers, order and
//! statistics are bit-identical to a rebuilt database, while open time is
//! page-cache warm-up instead of a re-ingest. Corrupt images fail with a
//! typed [`SnapshotError`].
//!
//! ## Parallel conjunct evaluation
//!
//! Multi-conjunct queries rank-join independent per-conjunct streams, so
//! those streams can be produced on worker threads while the join consumes
//! them on the caller's thread. Enable it per request with
//! [`ExecOptions::with_parallel_conjuncts`] (or database-wide via
//! [`EvalOptions::with_parallel_conjuncts`]); workers come from a small
//! pool shared by every clone of the [`Database`]. The guarantees:
//!
//! * **Answer-identical**: the same tuples, in the same rank order, with
//!   the same deterministic tie-breaking — parallelism changes wall-clock
//!   behaviour only. Errors (`ResourceExhausted`, `DeadlineExceeded`)
//!   surface at the same stream positions.
//! * **Prompt cancellation**: each execution carries a shared
//!   [`crate::eval::CancelToken`]; deadlines, `max_tuples`, limits and
//!   dropping the [`Answers`] stream all cancel outstanding workers within
//!   the evaluators' check interval, and the stream joins its workers so no
//!   thread outlives it.
//! * **Merged statistics**: [`Answers::stats`] aggregates worker counters;
//!   on fully drained executions it equals the sequential counts exactly.
//!
//! ```
//! use omega_core::{Database, ExecOptions};
//! use omega_graph::GraphStore;
//! use omega_ontology::Ontology;
//!
//! let mut graph = GraphStore::new();
//! graph.add_triple("alice", "knows", "bob");
//! graph.add_triple("bob", "worksAt", "acme");
//! let db = Database::new(graph, Ontology::new());
//! let prepared = db.prepare("(?X, ?W) <- (?X, knows, ?Y), (?Y, worksAt, ?W)").unwrap();
//!
//! let sequential = prepared.execute(&ExecOptions::new()).unwrap();
//! let parallel = prepared
//!     .execute(&ExecOptions::new().with_parallel_conjuncts(true))
//!     .unwrap();
//! assert_eq!(sequential, parallel);
//! ```
//!
//! ```
//! use omega_core::{Database, ExecOptions};
//! use omega_graph::GraphStore;
//! use omega_ontology::Ontology;
//!
//! let mut graph = GraphStore::new();
//! graph.add_triple("alice", "knows", "bob");
//! graph.add_triple("bob", "knows", "carol");
//! let db = Database::new(graph, Ontology::new());
//!
//! // One-shot execution…
//! let answers = db
//!     .execute("(?X) <- (alice, knows+, ?X)", &ExecOptions::new())
//!     .unwrap();
//! assert_eq!(answers.len(), 2);
//!
//! // …or prepare once and stream, with per-request control.
//! let prepared = db.prepare("(?X) <- (alice, knows+, ?X)").unwrap();
//! let request = ExecOptions::new().with_limit(1);
//! let first: Vec<_> = prepared.answers(&request).collect();
//! assert_eq!(first.len(), 1);
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::time::{Duration, Instant};

use omega_graph::snapshot::{SnapshotReader, SnapshotWriter};
use omega_graph::wal::{Wal, WalConfig, WalFailure, CHECKPOINT_FILE};
use omega_graph::{FxHashSet, GraphDelta, GraphStore, NodeId, SnapshotError};
use omega_obs::{
    Counter as MetricCounter, Gauge as MetricGauge, Histogram as MetricHistogram, QueryProfile,
    Registry,
};
use omega_ontology::Ontology;

use crate::answer::Answer;
use crate::error::{OmegaError, Result};
use crate::eval::cancel::CancelToken;
use crate::eval::disjunction::compile_branches;
use crate::eval::fault::{fire as fault_fire, FaultPoint};
use crate::eval::parallel::{ParallelStream, StreamPlan, WorkerPool};
use crate::eval::plan::{compile_conjunct, ConjunctPlan};
use crate::eval::rank_join::{JoinInput, RankJoin};
use crate::eval::{AnswerStream, EvalOptions, EvalStats};
use crate::govern::{ExecutionPermit, GovernorConfig, GovernorHandle, ResourceGovernor};
use crate::query::ast::{Query, QueryMode, Term};
use crate::query::parser::parse_query;

pub use crate::eval::options::OverloadPolicy;

/// Default capacity of the per-database prepared-statement LRU cache.
const PREPARED_CACHE_CAPACITY: usize = 128;

/// Nanoseconds elapsed since `started`, saturated into a `u64` (580 years —
/// only profile arithmetic, never control flow, consumes these).
fn elapsed_ns(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// One *epoch* of the storage a database serves queries against: an
/// immutable graph view (frozen CSR, possibly layered with a delta overlay)
/// plus the shared ontology, tagged with the epoch counter it belongs to.
///
/// A `GraphData` is never mutated after construction. Mutations
/// ([`Database::apply`]) and compactions ([`Database::compact`]) build a
/// *new* `GraphData` with a bumped epoch and swap it in as the current one;
/// every in-flight execution, prepared statement and [`GraphRef`] keeps its
/// own `Arc` to the epoch it started on, so concurrent readers observe one
/// consistent graph for their whole lifetime.
pub(crate) struct GraphData {
    pub(crate) graph: GraphStore,
    pub(crate) ontology: Arc<Ontology>,
    pub(crate) epoch: u64,
}

/// The mutable slot holding the current storage epoch, shared by every
/// clone and reconfigured view of one [`Database`].
struct StorageSlot {
    /// The epoch currently served to new readers. Readers take the lock
    /// only long enough to clone the `Arc`; the graph behind it is
    /// immutable.
    current: RwLock<Arc<GraphData>>,
    /// Serialises writers ([`Database::apply`], [`Database::compact`],
    /// [`Database::save_snapshot`]). Held across the whole
    /// read-derive-publish cycle so concurrent writers cannot lose each
    /// other's updates; readers are never blocked by it.
    write_lock: Mutex<()>,
    /// Write-ahead log attached by the durable constructors; `None` runs
    /// the storage fully in-memory (the pre-durability behaviour). Lives in
    /// the slot — not the handle — so every clone and reconfigured view of
    /// one database logs through the same file.
    wal: Mutex<Option<Wal>>,
    /// Set when a WAL append fails: the storage stops accepting writes
    /// instead of lying about durability. Reads continue unaffected.
    read_only: AtomicBool,
    /// Highest epoch known to be on stable storage (0 without a WAL).
    durable_epoch: AtomicU64,
    /// Sequence number of the last WAL record appended (0 when none).
    wal_seq: AtomicU64,
}

impl StorageSlot {
    fn load(&self) -> Arc<GraphData> {
        Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner()))
    }

    fn store(&self, next: Arc<GraphData>) {
        *self.current.write().unwrap_or_else(|e| e.into_inner()) = next;
    }
}

/// Registry handles for the engine's own counters and the execution-latency
/// histogram. One per [`Database`] family (clones and reconfigured views
/// share it), resolved once at construction so the hot path records through
/// pre-fetched `Arc`s without ever touching the registry lock.
pub(crate) struct CoreMetrics {
    registry: Arc<Registry>,
    prepares: Arc<MetricCounter>,
    prepare_cache_hits: Arc<MetricCounter>,
    executions: Arc<MetricCounter>,
    degrades: Arc<MetricCounter>,
    mutations: Arc<MetricCounter>,
    compactions: Arc<MetricCounter>,
    exec_ns: Arc<MetricHistogram>,
    wal_appends: Arc<MetricCounter>,
    wal_bytes: Arc<MetricCounter>,
    wal_append_failures: Arc<MetricCounter>,
    wal_rotations: Arc<MetricCounter>,
    wal_recovered_records: Arc<MetricCounter>,
    wal_truncated_bytes: Arc<MetricCounter>,
    wal_sync_ns: Arc<MetricHistogram>,
    read_only: Arc<MetricGauge>,
}

impl CoreMetrics {
    fn new(registry: Arc<Registry>) -> Arc<CoreMetrics> {
        Arc::new(CoreMetrics {
            prepares: registry.counter("omega_core_prepares_total", &[]),
            prepare_cache_hits: registry.counter("omega_core_prepare_cache_hits_total", &[]),
            executions: registry.counter("omega_core_executions_total", &[]),
            degrades: registry.counter("omega_core_degraded_total", &[]),
            mutations: registry.counter("omega_core_mutations_total", &[]),
            compactions: registry.counter("omega_core_compactions_total", &[]),
            exec_ns: registry.histogram("omega_core_execution_ns", &[]),
            wal_appends: registry.counter("omega_core_wal_appends_total", &[]),
            wal_bytes: registry.counter("omega_core_wal_bytes_total", &[]),
            wal_append_failures: registry.counter("omega_core_wal_append_failures_total", &[]),
            wal_rotations: registry.counter("omega_core_wal_rotations_total", &[]),
            wal_recovered_records: registry.counter("omega_core_wal_recovered_records_total", &[]),
            wal_truncated_bytes: registry.counter("omega_core_wal_truncated_bytes_total", &[]),
            wal_sync_ns: registry.histogram("omega_core_wal_sync_ns", &[]),
            read_only: registry.gauge("omega_core_read_only", &[]),
            registry,
        })
    }
}

struct DbInner {
    storage: Arc<StorageSlot>,
    /// The ontology, shared across every epoch (mutations touch edges, not
    /// the class/property hierarchies).
    ontology: Arc<Ontology>,
    options: Arc<EvalOptions>,
    cache: Mutex<PreparedCache>,
    /// Signalled whenever a prepare finishes (or fails) compiling a cache
    /// entry, waking threads parked on its in-flight marker.
    cache_ready: Condvar,
    /// Number of plan compilations performed by [`Database::prepare`] cache
    /// misses (stampeded or stale entries each count once).
    compilations: AtomicU64,
    /// Shared conjunct worker pool: parallel executions reuse parked threads
    /// instead of spawning per conjunct.
    pool: Arc<WorkerPool>,
    /// The database-wide resource governor: every execution against this
    /// storage — from any clone or reconfigured view — is admitted by it and
    /// draws its live tuples from its shared pool.
    govern: Arc<ResourceGovernor>,
    /// The metrics registry and the engine's pre-registered handles into it.
    metrics: Arc<CoreMetrics>,
}

/// A shared, thread-safe handle over one graph + ontology.
///
/// Cloning is an `Arc` bump: hand clones to worker threads and serve queries
/// from all of them concurrently. The graph is frozen into its CSR
/// representation on construction and never mutated afterwards.
#[derive(Clone)]
pub struct Database {
    inner: Arc<DbInner>,
}

impl Database {
    /// Creates a database with default [`EvalOptions`].
    pub fn new(graph: GraphStore, ontology: Ontology) -> Database {
        Database::with_options(graph, ontology, EvalOptions::default())
    }

    /// Creates a database with explicit base options.
    ///
    /// The base options fix the query *semantics* (edit/relaxation costs,
    /// inference) that prepared plans are compiled against; per-request
    /// execution knobs are supplied through [`ExecOptions`] instead.
    pub fn with_options(graph: GraphStore, ontology: Ontology, options: EvalOptions) -> Database {
        Database::with_governor(graph, ontology, options, GovernorConfig::default())
    }

    /// Creates a database whose executions are admitted and budgeted by a
    /// [`ResourceGovernor`] built from `config`.
    ///
    /// The governor is database-wide: concurrent executions from any clone
    /// of this handle (or any [`Database::reconfigured`] view) share one
    /// live-tuple pool, one admission gate and one concurrency ceiling.
    pub fn with_governor(
        mut graph: GraphStore,
        mut ontology: Ontology,
        options: EvalOptions,
        config: GovernorConfig,
    ) -> Database {
        graph.freeze();
        // Interning the ontology closures makes the RDFS-inference paths
        // allocation-free; idempotent (snapshot-loaded ontologies arrive
        // frozen).
        ontology.freeze();
        let ontology = Arc::new(ontology);
        let registry = Arc::new(Registry::new());
        let govern = ResourceGovernor::new(config);
        govern.bind_metrics(&registry);
        Database {
            inner: Arc::new(DbInner {
                storage: Arc::new(StorageSlot {
                    current: RwLock::new(Arc::new(GraphData {
                        graph,
                        ontology: Arc::clone(&ontology),
                        epoch: 0,
                    })),
                    write_lock: Mutex::new(()),
                    wal: Mutex::new(None),
                    read_only: AtomicBool::new(false),
                    durable_epoch: AtomicU64::new(0),
                    wal_seq: AtomicU64::new(0),
                }),
                ontology,
                options: Arc::new(options),
                cache: Mutex::new(PreparedCache::new(PREPARED_CACHE_CAPACITY)),
                cache_ready: Condvar::new(),
                compilations: AtomicU64::new(0),
                pool: WorkerPool::with_default_size(),
                govern,
                metrics: CoreMetrics::new(registry),
            }),
        }
    }

    /// A new handle over the *same* graph and ontology with different base
    /// options and a fresh prepared-statement cache. The storage is shared,
    /// not copied.
    pub fn reconfigured(&self, options: EvalOptions) -> Database {
        Database {
            inner: Arc::new(DbInner {
                storage: Arc::clone(&self.inner.storage),
                ontology: Arc::clone(&self.inner.ontology),
                options: Arc::new(options),
                cache: Mutex::new(PreparedCache::new(PREPARED_CACHE_CAPACITY)),
                cache_ready: Condvar::new(),
                compilations: AtomicU64::new(0),
                pool: Arc::clone(&self.inner.pool),
                govern: Arc::clone(&self.inner.govern),
                metrics: Arc::clone(&self.inner.metrics),
            }),
        }
    }

    /// The metrics registry every subsystem of this database family reports
    /// into: engine counters, execution-latency histogram, governor
    /// admission counters — and whatever a host layer (the `omega-server`
    /// daemon) registers on top. Render it with
    /// [`omega_obs::Registry::expose`].
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.inner.metrics.registry
    }

    /// The engine's pre-resolved metric handles, for execution paths.
    pub(crate) fn core_metrics(&self) -> &Arc<CoreMetrics> {
        &self.inner.metrics
    }

    /// The database-wide resource governor: inspect its gauges, or hold the
    /// `Arc` to watch saturation from a monitoring thread.
    pub fn governor(&self) -> &Arc<ResourceGovernor> {
        &self.inner.govern
    }

    /// The data graph of the *current* epoch.
    ///
    /// The returned [`GraphRef`] pins that epoch: it stays valid — and keeps
    /// answering identically — however many mutations or compactions land
    /// after the call. Re-call `graph()` to observe them.
    pub fn graph(&self) -> GraphRef {
        GraphRef { data: self.data() }
    }

    /// The ontology (shared across all epochs).
    pub fn ontology(&self) -> &Ontology {
        &self.inner.ontology
    }

    /// The current storage epoch. Starts at 0; every applied mutation batch
    /// and every effective compaction bumps it by one.
    pub fn epoch(&self) -> u64 {
        self.data().epoch
    }

    /// The base evaluation options prepared queries compile against.
    pub fn options(&self) -> &EvalOptions {
        &self.inner.options
    }

    /// The current storage epoch (graph + ontology), for execution paths
    /// that hand clones to conjunct worker threads.
    pub(crate) fn data(&self) -> Arc<GraphData> {
        self.inner.storage.load()
    }

    /// The shared conjunct worker pool.
    pub(crate) fn pool(&self) -> &Arc<WorkerPool> {
        &self.inner.pool
    }

    /// Parses, validates and compiles `text` into a [`PreparedQuery`],
    /// consulting the prepared-statement cache first.
    ///
    /// Cache entries are tagged with the storage epoch they were compiled
    /// against: an entry from an older epoch is recompiled, never silently
    /// reused, because compile-time artefacts (seed estimates, accept lower
    /// bounds, label statistics) may no longer describe the mutated graph.
    /// Concurrent misses on the same text are stampede-proof — exactly one
    /// caller compiles while the others wait for its result.
    pub fn prepare(&self, text: &str) -> Result<PreparedQuery> {
        self.inner.metrics.prepares.inc();
        // Pin the epoch before touching the cache so the compiled plans and
        // the tag always describe the same graph.
        let data = self.data();
        let epoch = data.epoch;
        {
            // The cache critical sections never panic, but a poisoned lock
            // must not take the whole database down with it: recover the
            // guard.
            let mut cache = self.inner.cache.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                match cache.probe(text, epoch) {
                    CacheProbe::Hit(prepared) => {
                        self.inner.metrics.prepare_cache_hits.inc();
                        return Ok(prepared);
                    }
                    CacheProbe::Busy => {
                        // Another thread is compiling this text (for this or
                        // an older epoch): wait for it, then re-probe. A
                        // stale or failed result turns into a miss below.
                        cache = self
                            .inner
                            .cache_ready
                            .wait(cache)
                            .unwrap_or_else(|e| e.into_inner());
                    }
                    CacheProbe::Miss => break,
                }
            }
            cache.begin_build(text.to_owned());
        }
        // Compile outside the lock; the in-flight marker keeps concurrent
        // callers parked instead of duplicating this work.
        self.inner.compilations.fetch_add(1, Ordering::Relaxed);
        let parse_started = Instant::now();
        let result = parse_query(text).and_then(|query| {
            let parse_ns = elapsed_ns(parse_started);
            self.prepare_against(&query, &data, parse_ns)
        });
        {
            let mut cache = self.inner.cache.lock().unwrap_or_else(|e| e.into_inner());
            match &result {
                Ok(prepared) => cache.finish_build(text, epoch, prepared.clone()),
                // Errors are not `Clone`, so waiters retry the compilation
                // themselves instead of sharing this failure.
                Err(_) => cache.abort_build(text),
            }
        }
        self.inner.cache_ready.notify_all();
        result
    }

    /// Parses and compiles `text` without touching the cache.
    pub fn prepare_uncached(&self, text: &str) -> Result<PreparedQuery> {
        self.inner.metrics.prepares.inc();
        let parse_started = Instant::now();
        let query = parse_query(text)?;
        let parse_ns = elapsed_ns(parse_started);
        let data = self.data();
        self.prepare_against(&query, &data, parse_ns)
    }

    /// Compiles an already parsed query (uncached) against the current
    /// epoch.
    pub fn prepare_query(&self, query: &Query) -> Result<PreparedQuery> {
        let data = self.data();
        self.prepare_against(query, &data, 0)
    }

    /// Compiles `query` against a pinned storage epoch, recording the time
    /// spent (plus the caller's measured parse time) for query profiles.
    fn prepare_against(
        &self,
        query: &Query,
        data: &Arc<GraphData>,
        parse_ns: u64,
    ) -> Result<PreparedQuery> {
        let compile_started = Instant::now();
        let mut inner = compile_prepared(query, &data.graph, &data.ontology, &self.inner.options)?;
        inner.parse_ns = parse_ns;
        inner.compile_ns = elapsed_ns(compile_started);
        Ok(PreparedQuery {
            data: Arc::clone(data),
            base: Arc::clone(&self.inner.options),
            pool: Arc::clone(&self.inner.pool),
            govern: Arc::clone(&self.inner.govern),
            metrics: Arc::clone(&self.inner.metrics),
            inner: Arc::new(inner),
        })
    }

    /// How many plan compilations [`Database::prepare`] has performed on
    /// this handle (i.e. cache misses, including stale-epoch recompiles).
    pub fn prepared_compilations(&self) -> u64 {
        self.inner.compilations.load(Ordering::Relaxed)
    }

    /// Prepares (with caching) and executes `text` under `request`,
    /// collecting the answers.
    pub fn execute(&self, text: &str, request: &ExecOptions) -> Result<Vec<Answer>> {
        self.prepare(text)?.execute(request)
    }

    /// Number of entries currently in the prepared-statement cache.
    pub fn prepared_cache_len(&self) -> usize {
        self.inner
            .cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entries
            .len()
    }

    // ------------------------------------------------------------------
    // Live mutation
    // ------------------------------------------------------------------

    /// Starts collecting a batch of edge mutations.
    ///
    /// The batch is a plain value — build it up with [`MutationBatch::add`]
    /// / [`MutationBatch::remove`] and hand it to [`Database::apply`], which
    /// publishes the whole batch atomically as one new epoch. Nothing is
    /// visible to queries until `apply` returns.
    pub fn begin_mutation(&self) -> MutationBatch {
        MutationBatch::new()
    }

    /// Applies `batch` to the current graph, publishing a new storage epoch.
    ///
    /// The frozen CSR of the current epoch is **never dropped or rebuilt**:
    /// the new epoch layers the batch as a delta overlay over the shared
    /// base arrays, so applying is proportional to the batch, not the graph.
    /// In-flight executions and [`PreparedQuery`] handles keep reading the
    /// epoch they pinned; only queries prepared after `apply` returns see
    /// the mutation. Writers are serialised; an empty batch is a no-op that
    /// reports the current epoch without bumping it.
    ///
    /// When a write-ahead log is attached (the durable constructors), the
    /// batch is appended to the log **before** the epoch pointer swap
    /// publishes it — with `FsyncPolicy::Always` a successful return means
    /// the record is on stable storage. If the append fails, the storage
    /// degrades to read-only ([`OmegaError::ReadOnly`]): reads keep being
    /// served, but no write is acknowledged that recovery could not replay.
    pub fn apply(&self, batch: &MutationBatch) -> Result<MutationReport> {
        let _writer = self
            .inner
            .storage
            .write_lock
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let cur = self.data();
        if batch.is_empty() {
            return Ok(MutationReport {
                epoch: cur.epoch,
                added: 0,
                removed: 0,
            });
        }
        if self.inner.storage.read_only.load(Ordering::Acquire) {
            return Err(OmegaError::ReadOnly {
                message: "write-ahead log degraded; repair the log directory and restart".into(),
            });
        }
        if fault_fire(FaultPoint::MutationApply) {
            return Err(OmegaError::MutationFailed {
                message: "injected mutation-apply fault".into(),
            });
        }
        let (graph, report) =
            cur.graph
                .with_delta(&batch.delta)
                .map_err(|e| OmegaError::MutationFailed {
                    message: e.to_string(),
                })?;
        let epoch = cur.epoch + 1;
        self.log_batch(batch, epoch)?;
        self.inner.storage.store(Arc::new(GraphData {
            graph,
            ontology: Arc::clone(&cur.ontology),
            epoch,
        }));
        self.inner.metrics.mutations.inc();
        Ok(MutationReport {
            epoch,
            added: report.added,
            removed: report.removed,
        })
    }

    /// Appends `batch` to the write-ahead log (when one is attached) as the
    /// record for `epoch`. Must run before the epoch is published. On
    /// failure the storage flips to read-only and the error names the cause;
    /// the epoch is never published, so the caller observes all-or-nothing.
    fn log_batch(&self, batch: &MutationBatch, epoch: u64) -> Result<()> {
        let mut slot = self
            .inner
            .storage
            .wal
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let Some(wal) = slot.as_mut() else {
            return Ok(());
        };
        if fault_fire(FaultPoint::WalAppend) {
            wal.inject_failure(Some(WalFailure::TornRecord));
        } else if fault_fire(FaultPoint::WalSync) {
            wal.inject_failure(Some(WalFailure::SyncFailure));
        }
        match wal.append(epoch, batch.delta.adds(), batch.delta.removes()) {
            Ok(out) => {
                self.inner.storage.wal_seq.store(out.seq, Ordering::Release);
                self.inner.metrics.wal_appends.inc();
                self.inner.metrics.wal_bytes.add(out.bytes);
                if out.synced {
                    self.inner.metrics.wal_sync_ns.record(out.sync_ns);
                    self.inner
                        .storage
                        .durable_epoch
                        .store(epoch, Ordering::Release);
                }
                Ok(())
            }
            Err(err) => {
                self.inner.storage.read_only.store(true, Ordering::Release);
                self.inner.metrics.wal_append_failures.inc();
                self.inner.metrics.read_only.set(1);
                Err(OmegaError::ReadOnly {
                    message: format!("write-ahead log append failed: {err}"),
                })
            }
        }
    }

    /// Merges the accumulated delta overlay back into a fresh frozen CSR,
    /// publishing the result as a new epoch, and returns the epoch serving
    /// afterwards.
    ///
    /// Readers are never blocked: the rebuild happens off the read path on a
    /// private clone, and the swap is one pointer store. When the current
    /// epoch carries no overlay this is a no-op (the epoch is not bumped).
    /// Run it periodically — e.g. from a background thread once
    /// [`omega_graph::GraphStore::overlay_edges`] crosses a threshold — to
    /// keep read amplification bounded under sustained writes.
    /// With a write-ahead log attached, an effective compaction also
    /// rotates the log: the compacted state is checkpointed into the WAL
    /// directory and the log emptied, so recovery replays from a short log
    /// instead of the full mutation history (incremental snapshots).
    pub fn compact(&self) -> u64 {
        let guard = self
            .inner
            .storage
            .write_lock
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let next = self.compact_locked(&guard);
        self.rotate_wal_locked(&next, &guard);
        next.epoch
    }

    /// Compaction body; requires the writer lock to be held.
    fn compact_locked(&self, _writer: &MutexGuard<'_, ()>) -> Arc<GraphData> {
        let cur = self.data();
        if !cur.graph.has_overlay() {
            return cur;
        }
        let next = Arc::new(GraphData {
            graph: cur.graph.compacted(),
            ontology: Arc::clone(&cur.ontology),
            epoch: cur.epoch + 1,
        });
        self.inner.storage.store(Arc::clone(&next));
        self.inner.metrics.compactions.inc();
        next
    }

    // ------------------------------------------------------------------
    // Snapshot persistence
    // ------------------------------------------------------------------

    /// Serialises the frozen graph and ontology into a single snapshot
    /// image at `path` (written atomically via a temp file).
    ///
    /// The image holds every CSR offset/neighbour array, the node and
    /// edge-label dictionaries, and the ontology hierarchies with their
    /// interned closures, in the versioned checksummed container documented
    /// in [`omega_graph::snapshot`]. Build once, then have every later
    /// process [`Database::open_snapshot`] the file in milliseconds instead
    /// of re-ingesting and re-freezing the graph.
    ///
    /// A live delta overlay is compacted first (the image format carries
    /// pure CSR arrays only); the writer lock is held across compaction and
    /// serialisation, so the image is a consistent epoch with no mutations
    /// interleaved.
    pub fn save_snapshot<P: AsRef<std::path::Path>>(
        &self,
        path: P,
    ) -> std::result::Result<(), SnapshotError> {
        let guard = self
            .inner
            .storage
            .write_lock
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let data = self.compact_locked(&guard);
        let mut writer = SnapshotWriter::new();
        omega_graph::snapshot::write_graph_sections(&data.graph, &mut writer)?;
        omega_ontology::snapshot::write_ontology_section(&data.ontology, &mut writer)?;
        writer.write_to(path.as_ref())?;
        // The image now holds everything the log held; rotate so the
        // snapshot+log pair stays minimal.
        self.rotate_wal_locked(&data, &guard);
        Ok(())
    }

    /// Checkpoints `data` into the WAL directory and empties the log.
    /// Requires the writer lock (no mutation can interleave) and compacted
    /// data (the image format carries pure CSR arrays only).
    ///
    /// Failures are deliberately *not* surfaced: a skipped rotation leaves
    /// the full log in place, so recovery still replays every acknowledged
    /// record — rotation is a log-length optimisation, never a durability
    /// event. Even the checkpoint-written-but-truncate-failed window is
    /// safe: replaying a log over the checkpoint built from its own records
    /// is a no-op (adds of present edges and removes of absent edges are
    /// both idempotent, and order is preserved).
    fn rotate_wal_locked(&self, data: &GraphData, _writer: &MutexGuard<'_, ()>) {
        let mut slot = self
            .inner
            .storage
            .wal
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let Some(wal) = slot.as_mut() else { return };
        if wal.is_empty() {
            return;
        }
        let mut writer = SnapshotWriter::new();
        let written = omega_graph::snapshot::write_graph_sections(&data.graph, &mut writer)
            .and_then(|()| {
                omega_ontology::snapshot::write_ontology_section(&data.ontology, &mut writer)
            })
            .and_then(|()| writer.write_to(&wal.checkpoint_path()));
        if written.is_ok() && wal.rotate().is_ok() {
            self.inner.metrics.wal_rotations.inc();
        }
    }

    /// Opens a snapshot image with default [`EvalOptions`].
    ///
    /// See [`Database::open_snapshot_with`].
    pub fn open_snapshot<P: AsRef<std::path::Path>>(
        path: P,
    ) -> std::result::Result<Database, SnapshotError> {
        Database::open_snapshot_with(path, EvalOptions::default())
    }

    /// Opens a snapshot image written by [`Database::save_snapshot`],
    /// memory-mapping the CSR arrays in place.
    ///
    /// The database answers queries **bit-identically** to one rebuilt from
    /// the original graph and ontology — same answers, same order, same
    /// [`EvalStats`] — but opening costs page-cache warm-up plus the node
    /// hash-index rebuild rather than a full ingest. The mapping is held
    /// alive by the database's shared inner `Arc`, so clones, prepared
    /// queries and streamed answers all keep it valid; dropping the last
    /// handle unmaps the file.
    ///
    /// Corruption never panics: a wrong magic, an unsupported format
    /// version, a truncated file or a failed section checksum each surface
    /// as the corresponding typed [`SnapshotError`].
    pub fn open_snapshot_with<P: AsRef<std::path::Path>>(
        path: P,
        options: EvalOptions,
    ) -> std::result::Result<Database, SnapshotError> {
        Database::open_snapshot_with_governor(path, options, GovernorConfig::default())
    }

    /// [`Database::open_snapshot_with`] plus an explicit [`GovernorConfig`],
    /// for serving deployments that open an image *and* bound admission.
    pub fn open_snapshot_with_governor<P: AsRef<std::path::Path>>(
        path: P,
        options: EvalOptions,
        config: GovernorConfig,
    ) -> std::result::Result<Database, SnapshotError> {
        if fault_fire(FaultPoint::SnapshotRead) {
            return Err(SnapshotError::Io("injected snapshot read fault".into()));
        }
        let reader = SnapshotReader::open(path.as_ref())?;
        let graph = omega_graph::snapshot::read_graph(&reader)?;
        let ontology = omega_ontology::snapshot::read_ontology_section(&reader)?;
        // `with_governor` re-freezes both, which is a no-op here: the graph
        // arrives with its (mapped) CSR and the ontology with its interned
        // closures.
        Ok(Database::with_governor(graph, ontology, options, config))
    }

    // ------------------------------------------------------------------
    // Durability: write-ahead log + crash recovery
    // ------------------------------------------------------------------

    /// [`Database::with_governor`] plus an attached write-ahead log: every
    /// applied batch is logged before it is published, and opening the same
    /// WAL directory after a crash replays every acknowledged mutation.
    ///
    /// When the directory holds a rotation checkpoint (written by
    /// [`Database::compact`] / [`Database::save_snapshot`]), the checkpoint
    /// — not the passed `graph`/`ontology` — is the recovery base: the log
    /// was truncated against it, so replaying over anything else would lose
    /// the pre-checkpoint mutations. A fresh directory uses the passed data.
    pub fn with_governor_durable(
        graph: GraphStore,
        ontology: Ontology,
        options: EvalOptions,
        config: GovernorConfig,
        wal: &WalConfig,
    ) -> Result<(Database, RecoveryReport)> {
        let checkpoint = wal.dir.join(CHECKPOINT_FILE);
        let (db, from_checkpoint) = if checkpoint.exists() {
            let db = Database::open_snapshot_with_governor(&checkpoint, options, config).map_err(
                |e| OmegaError::Internal {
                    message: format!("wal checkpoint unreadable: {e}"),
                },
            )?;
            (db, true)
        } else {
            (
                Database::with_governor(graph, ontology, options, config),
                false,
            )
        };
        let mut report = db.attach_wal(wal)?;
        report.from_checkpoint = from_checkpoint;
        Ok((db, report))
    }

    /// [`Database::open_snapshot_with_governor`] plus an attached
    /// write-ahead log; see [`Database::with_governor_durable`] for the
    /// recovery-base rules (a rotation checkpoint in the WAL directory
    /// supersedes the snapshot at `path`).
    pub fn open_snapshot_durable<P: AsRef<std::path::Path>>(
        path: P,
        options: EvalOptions,
        config: GovernorConfig,
        wal: &WalConfig,
    ) -> Result<(Database, RecoveryReport)> {
        let checkpoint = wal.dir.join(CHECKPOINT_FILE);
        let (base, from_checkpoint) = if checkpoint.exists() {
            (checkpoint.as_path(), true)
        } else {
            (path.as_ref(), false)
        };
        let db = Database::open_snapshot_with_governor(base, options, config).map_err(|e| {
            OmegaError::Internal {
                message: format!("snapshot open failed: {e}"),
            }
        })?;
        let mut report = db.attach_wal(wal)?;
        report.from_checkpoint = from_checkpoint;
        Ok((db, report))
    }

    /// Opens the log under `config`, replays the acknowledged prefix into
    /// this database through the normal apply path (the WAL slot is still
    /// empty, so replay does not re-log itself), then arms the slot so
    /// subsequent applies append.
    fn attach_wal(&self, config: &WalConfig) -> Result<RecoveryReport> {
        let (wal, recovery) = Wal::open(config).map_err(|e| OmegaError::Internal {
            message: format!("wal open failed: {e}"),
        })?;
        for record in &recovery.records {
            let mut batch = MutationBatch::new();
            for (tail, label, head) in &record.adds {
                batch.add(tail, label, head);
            }
            for (tail, label, head) in &record.removes {
                batch.remove(tail, label, head);
            }
            self.apply(&batch)?;
        }
        self.inner
            .metrics
            .wal_recovered_records
            .add(recovery.records.len() as u64);
        self.inner
            .metrics
            .wal_truncated_bytes
            .add(recovery.truncated_bytes);
        let report = RecoveryReport {
            records: recovery.records.len() as u64,
            truncated_bytes: recovery.truncated_bytes,
            from_checkpoint: recovery.has_checkpoint,
        };
        self.inner
            .storage
            .wal_seq
            .store(wal.next_seq().saturating_sub(1), Ordering::Release);
        // Everything replayed came off stable storage.
        self.inner
            .storage
            .durable_epoch
            .store(self.epoch(), Ordering::Release);
        *self
            .inner
            .storage
            .wal
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = Some(wal);
        Ok(report)
    }

    /// Whether a write-ahead log is attached to this storage.
    pub fn wal_attached(&self) -> bool {
        self.inner
            .storage
            .wal
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_some()
    }

    /// Sequence number of the last write-ahead-log record appended (0 when
    /// none, or when no WAL is attached).
    pub fn wal_seq(&self) -> u64 {
        self.inner.storage.wal_seq.load(Ordering::Acquire)
    }

    /// Highest epoch known to be on stable storage. 0 without a WAL; lags
    /// [`Database::epoch`] under `every-N-ms` / `never` fsync policies,
    /// tracks it exactly under `always`.
    pub fn durable_epoch(&self) -> u64 {
        self.inner.storage.durable_epoch.load(Ordering::Acquire)
    }

    /// Whether the storage has degraded to read-only mode (a WAL append
    /// failed). Reads are unaffected; writes fail with
    /// [`OmegaError::ReadOnly`] until the log is repaired and the process
    /// restarted.
    pub fn read_only(&self) -> bool {
        self.inner.storage.read_only.load(Ordering::Acquire)
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("nodes", &self.graph().node_count())
            .field("edges", &self.graph().edge_count())
            .field("prepared", &self.prepared_cache_len())
            .finish()
    }
}

/// An owned view of one storage epoch's data graph.
///
/// Returned by [`Database::graph`]; dereferences to the underlying
/// [`GraphStore`]. Holding a `GraphRef` pins the epoch it was taken from:
/// mutations and compactions applied afterwards publish *new* epochs and
/// never touch this one, so every read through the same `GraphRef` is
/// consistent — and the reference stays valid indefinitely.
pub struct GraphRef {
    data: Arc<GraphData>,
}

impl GraphRef {
    /// The storage epoch this view pins.
    pub fn epoch(&self) -> u64 {
        self.data.epoch
    }
}

impl std::ops::Deref for GraphRef {
    type Target = GraphStore;

    fn deref(&self) -> &GraphStore {
        &self.data.graph
    }
}

impl AsRef<GraphStore> for GraphRef {
    fn as_ref(&self) -> &GraphStore {
        &self.data.graph
    }
}

impl std::fmt::Debug for GraphRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphRef")
            .field("epoch", &self.data.epoch)
            .field("nodes", &self.data.graph.node_count())
            .field("edges", &self.data.graph.edge_count())
            .finish()
    }
}

/// A batch of edge additions and removals, applied atomically by
/// [`Database::apply`].
///
/// Additions may reference nodes that do not exist yet (they are created
/// with the given labels); removals of edges the graph does not contain are
/// no-ops. Within one batch, additions apply before removals.
#[derive(Debug, Clone, Default)]
pub struct MutationBatch {
    delta: GraphDelta,
}

impl MutationBatch {
    /// An empty batch (see also [`Database::begin_mutation`]).
    pub fn new() -> MutationBatch {
        MutationBatch::default()
    }

    /// Queues the addition of edge `tail -[label]-> head`.
    pub fn add(&mut self, tail: &str, label: &str, head: &str) -> &mut Self {
        self.delta.add(tail, label, head);
        self
    }

    /// Queues the removal of edge `tail -[label]-> head`.
    pub fn remove(&mut self, tail: &str, label: &str, head: &str) -> &mut Self {
        self.delta.remove(tail, label, head);
        self
    }

    /// Whether the batch queues no mutations.
    pub fn is_empty(&self) -> bool {
        self.delta.is_empty()
    }

    /// Number of queued mutations (additions plus removals).
    pub fn len(&self) -> usize {
        self.delta.len()
    }
}

/// What [`Database::apply`] did: the epoch now serving and the number of
/// edges actually added/removed (duplicates and unknown removals are
/// excluded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutationReport {
    /// The storage epoch serving after the batch (unchanged for an empty
    /// batch).
    pub epoch: u64,
    /// Edges actually added.
    pub added: u64,
    /// Edges actually removed.
    pub removed: u64,
}

/// What crash recovery found when a durable constructor opened a WAL
/// directory (see [`Database::with_governor_durable`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Write-ahead-log records replayed into the graph.
    pub records: u64,
    /// Bytes of torn/corrupt log tail discarded (0 after a clean shutdown).
    pub truncated_bytes: u64,
    /// Whether the recovery base was a rotation checkpoint rather than the
    /// caller-supplied graph or snapshot.
    pub from_checkpoint: bool,
}

/// One prepared-statement cache slot.
enum CacheSlot {
    /// A compiled statement, tagged with the epoch it was compiled against.
    Ready { epoch: u64, prepared: PreparedQuery },
    /// A compilation in flight on some thread; concurrent `prepare` calls
    /// for the same text park on the database's condvar instead of
    /// duplicating the work.
    Building,
}

/// What a cache probe found (see [`Database::prepare`]).
enum CacheProbe {
    Hit(PreparedQuery),
    Busy,
    Miss,
}

/// Least-recently-used map from query text to its prepared form. The entry
/// vector keeps most-recently-used entries at the back; capacity is small,
/// so the linear scan is cheaper than a hash + recency list would be.
struct PreparedCache {
    capacity: usize,
    entries: Vec<(String, CacheSlot)>,
}

impl PreparedCache {
    fn new(capacity: usize) -> PreparedCache {
        PreparedCache {
            capacity: capacity.max(1),
            entries: Vec::new(),
        }
    }

    /// Looks `text` up for `epoch`. A ready entry from an older epoch is
    /// dropped and reported as a miss — its plans were compiled against a
    /// graph that no longer serves, so reusing them could return wrong
    /// answers or mis-ordered streams.
    fn probe(&mut self, text: &str, epoch: u64) -> CacheProbe {
        let Some(pos) = self.entries.iter().position(|(t, _)| t == text) else {
            return CacheProbe::Miss;
        };
        match &self.entries[pos].1 {
            CacheSlot::Ready { epoch: e, prepared } if *e == epoch => {
                let hit = prepared.clone();
                self.entries[pos..].rotate_left(1);
                CacheProbe::Hit(hit)
            }
            CacheSlot::Ready { .. } => {
                self.entries.remove(pos);
                CacheProbe::Miss
            }
            CacheSlot::Building => CacheProbe::Busy,
        }
    }

    /// Marks `text` as being compiled by the calling thread.
    fn begin_build(&mut self, text: String) {
        self.entries.push((text, CacheSlot::Building));
    }

    /// Publishes the compiled statement for `text`, replacing its in-flight
    /// marker (or inserting fresh if the marker was evicted meanwhile).
    fn finish_build(&mut self, text: &str, epoch: u64, prepared: PreparedQuery) {
        if let Some(pos) = self.entries.iter().position(|(t, _)| t == text) {
            self.entries.remove(pos);
        }
        self.entries
            .push((text.to_owned(), CacheSlot::Ready { epoch, prepared }));
        if self.entries.len() > self.capacity {
            // Evict the least-recently-used *ready* entry; in-flight markers
            // are owned by their builder and must survive until it finishes.
            if let Some(pos) = self
                .entries
                .iter()
                .position(|(_, slot)| matches!(slot, CacheSlot::Ready { .. }))
            {
                self.entries.remove(pos);
            }
        }
    }

    /// Drops the in-flight marker for `text` after a failed compilation.
    fn abort_build(&mut self, text: &str) {
        if let Some(pos) = self
            .entries
            .iter()
            .position(|(t, slot)| t == text && matches!(slot, CacheSlot::Building))
        {
            self.entries.remove(pos);
        }
    }
}

/// One compiled conjunct of a prepared query.
struct PreparedConjunct {
    plan: Arc<ConjunctPlan>,
    /// Branch plans for an APPROX top-level alternation, compiled lazily the
    /// first time a request enables the disjunction optimisation (so
    /// requests that never use it pay nothing) and then reused by every
    /// later execution, from any thread.
    branches: std::sync::OnceLock<Option<Vec<Arc<ConjunctPlan>>>>,
    subject_var: Option<String>,
    object_var: Option<String>,
    mode: QueryMode,
}

/// The compile-once state shared by every execution of a prepared query.
pub(crate) struct PreparedInner {
    query: Query,
    conjuncts: Vec<PreparedConjunct>,
    /// Time [`Database::prepare`] spent parsing the query text, reported in
    /// the `parse` phase of every execution's [`QueryProfile`]. Zero when
    /// the statement was compiled from an already-parsed [`Query`].
    parse_ns: u64,
    /// Time spent compiling the conjunct plans (the `compile` profile
    /// phase). Zero for plans built outside [`Database`] prepare paths.
    compile_ns: u64,
}

/// Parses nothing, validates `query` and compiles every conjunct.
pub(crate) fn compile_prepared(
    query: &Query,
    graph: &GraphStore,
    ontology: &Ontology,
    options: &EvalOptions,
) -> Result<PreparedInner> {
    query.validate()?;
    let mut conjuncts = Vec::with_capacity(query.conjuncts.len());
    for conjunct in &query.conjuncts {
        let plan = Arc::new(compile_conjunct(conjunct, graph, ontology, options)?);
        conjuncts.push(PreparedConjunct {
            plan,
            branches: std::sync::OnceLock::new(),
            subject_var: conjunct.subject.as_variable().map(str::to_owned),
            object_var: conjunct.object.as_variable().map(str::to_owned),
            mode: conjunct.mode,
        });
    }
    Ok(PreparedInner {
        query: query.clone(),
        conjuncts,
        parse_ns: 0,
        compile_ns: 0,
    })
}

/// [`AnswerStream`] adaptor accumulating the wall-clock time spent inside
/// one conjunct's `next_answer` calls, for the per-conjunct profile phases.
/// Only constructed when the request asked for a profile.
struct TimedStream<'a> {
    inner: Box<dyn AnswerStream + 'a>,
    nanos: Arc<AtomicU64>,
}

impl AnswerStream for TimedStream<'_> {
    fn next_answer(&mut self) -> Result<Option<crate::answer::ConjunctAnswer>> {
        let started = Instant::now();
        let out = self.inner.next_answer();
        self.nanos.fetch_add(elapsed_ns(started), Ordering::Relaxed);
        out
    }

    fn stats(&self) -> EvalStats {
        self.inner.stats()
    }
}

/// In-flight profile accumulators for one execution; folded into a
/// [`QueryProfile`] when the stream finishes.
struct ProfileState {
    parse_ns: u64,
    compile_ns: u64,
    /// `(original conjunct index, time inside its next_answer calls)`.
    conjuncts: Vec<(usize, Arc<AtomicU64>)>,
    /// Time inside the rank join's `get_next_slots` (includes the conjunct
    /// time above — the join drives the streams).
    join_ns: u64,
}

impl PreparedInner {
    /// Builds the ranked answer stream for one execution.
    ///
    /// Every execution gets a fresh shared [`CancelToken`] (unless the
    /// caller installed one in `options`): the conjunct evaluators —
    /// sequential or on worker threads — poll it, and the returned
    /// [`Answers`] triggers it when the stream finishes, fails or is
    /// dropped, so no conjunct worker outlives its execution.
    ///
    /// With `parallel_conjuncts` on and more than one conjunct, up to
    /// `parallel_workers` conjuncts (all of them when `0`) are evaluated on
    /// worker threads feeding bounded channels; the ranked join consumes
    /// those channels on the caller's thread in exactly the sequential
    /// order, so the answer sequence is bit-identical either way.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn answers<'a>(
        &self,
        data: &'a Arc<GraphData>,
        pool: &Arc<WorkerPool>,
        govern: &Arc<ResourceGovernor>,
        metrics: &Arc<CoreMetrics>,
        mut options: EvalOptions,
        limit: Option<usize>,
        profile: bool,
    ) -> Answers<'a> {
        let started = Instant::now();
        // Admission: the governor gates every execution before any evaluator
        // state is built. Under `Shed` a rejected request backs off once,
        // shrinks its budgets and retries; otherwise the typed
        // `Overloaded` error is deferred to the stream's first pull
        // (`answers` is infallible by signature).
        let mut sheds = 0u64;
        let permit = loop {
            match govern.admit() {
                Ok(permit) => break permit,
                Err(err) => {
                    if options.on_overload == OverloadPolicy::Shed && sheds == 0 {
                        sheds = 1;
                        govern.note_shed(true);
                        if let OmegaError::Overloaded { retry_after } = err {
                            std::thread::sleep(retry_after);
                        }
                        if let Some(max) = options.max_tuples {
                            options.max_tuples = Some((max / 2).max(1));
                        }
                        options.max_psi_steps = (options.max_psi_steps / 2).max(1);
                        continue;
                    }
                    return Answers::rejected(&data.graph, err, sheds);
                }
            }
        };
        metrics.executions.inc();
        let mut profile_state = profile.then(|| {
            Box::new(ProfileState {
                parse_ns: self.parse_ns,
                compile_ns: self.compile_ns,
                conjuncts: Vec::with_capacity(self.conjuncts.len()),
                join_ns: 0,
            })
        });
        // Evaluators draw their live-tuple reservations from the shared pool
        // through this handle.
        options.govern = Some(GovernorHandle(Arc::clone(govern)));
        // Every execution gets its own token; a caller-installed base token
        // becomes the parent (an external kill switch), so finishing this
        // execution never poisons the base options for later queries.
        let cancel = match &options.cancel {
            Some(external) => external.child(),
            None => CancelToken::new(),
        };
        options.cancel = Some(cancel.clone());
        let options = Arc::new(options);
        let graph = &data.graph;
        let ontology = &data.ontology;
        let parallel = options.parallel_conjuncts && self.conjuncts.len() > 1;
        let worker_budget = if options.parallel_workers == 0 {
            self.conjuncts.len()
        } else {
            options.parallel_workers
        };
        // Stats-driven stream ordering (cost-guided): most selective
        // conjunct first, by the compile-time seed-cardinality estimate.
        // The join drains earlier inputs first on distance ties, so sparse
        // streams buffering fully before the big ones keeps probe work
        // small; answer *sets* are order-independent. Stable sort: equal
        // estimates keep the query's syntactic order.
        let mut order: Vec<usize> = (0..self.conjuncts.len()).collect();
        if options.cost_guided && self.conjuncts.len() > 1 {
            order.sort_by_key(|&i| self.conjuncts[i].plan.estimated_seed_count);
        }
        let inputs = order
            .iter()
            .enumerate()
            .map(|(pos, &i)| {
                let pc = &self.conjuncts[i];
                let plan = stream_plan(pc, &self.query.conjuncts[i], graph, ontology, &options);
                let stream: Box<dyn AnswerStream + 'a> = if parallel && pos < worker_budget {
                    match ParallelStream::spawn(plan, Arc::clone(data), Arc::clone(&options), pool)
                    {
                        Ok(stream) => Box::new(stream),
                        // Spawn failure (thread exhaustion): evaluate this
                        // conjunct inline — same answers, no parallelism.
                        Err(plan) => plan.materialize(graph, ontology, Arc::clone(&options)),
                    }
                } else {
                    plan.materialize(graph, ontology, Arc::clone(&options))
                };
                // Profiling wraps each conjunct stream in a timing adaptor,
                // keyed by the query's syntactic conjunct index so phases
                // read stably however cost-guided ordering shuffled them.
                let stream: Box<dyn AnswerStream + 'a> = match profile_state.as_mut() {
                    Some(state) => {
                        let nanos = Arc::new(AtomicU64::new(0));
                        state.conjuncts.push((i, Arc::clone(&nanos)));
                        Box::new(TimedStream {
                            inner: stream,
                            nanos,
                        })
                    }
                    None => stream,
                };
                JoinInput::new(stream, pc.subject_var.clone(), pc.object_var.clone())
            })
            .collect();
        let mut join = RankJoin::new(inputs);
        // Head variables resolve to join slot indices exactly once per
        // execution; projection and deduplication then work on dense
        // node-id tuples, never on name-keyed bindings.
        // Validation guarantees every head variable occurs in some conjunct;
        // the expect documents that invariant rather than a runtime failure
        // mode.
        #[allow(clippy::expect_used)]
        let head_slots: Vec<usize> = self
            .query
            .head
            .iter()
            .map(|v| {
                join.slot_index(v)
                    .expect("validated head variable occurs in some conjunct")
            })
            .collect();
        // Top-k threshold pushdown: when every join slot is projected, the
        // projection-level deduplication can never consume a join answer,
        // so the request's limit bounds the join answers needed and streams
        // provably past the k-th distance stop being pulled.
        if options.cost_guided {
            let mut distinct = head_slots.clone();
            distinct.sort_unstable();
            distinct.dedup();
            if distinct.len() == join.slot_names().len() {
                join.set_limit(limit);
            }
        }
        Answers {
            graph,
            join,
            head: self.query.head.clone(),
            head_slots,
            emitted: FxHashSet::default(),
            limit,
            yielded: 0,
            max_distance: options.max_distance,
            deadline: options.deadline,
            cancel,
            finished: false,
            pending: None,
            permit: Some(permit),
            govern: Some(Arc::clone(govern)),
            buffered: 0,
            sheds,
            started,
            metrics: Some(Arc::clone(metrics)),
            profile: profile_state,
            profile_out: None,
        }
    }
}

/// Chooses the evaluator recipe for one conjunct according to the request
/// options. Selection (and branch-plan compilation/caching) always happens
/// on the caller's thread; the returned [`StreamPlan`] is materialised
/// either inline or inside a conjunct worker.
fn stream_plan(
    pc: &PreparedConjunct,
    conjunct: &crate::query::ast::Conjunct,
    graph: &GraphStore,
    ontology: &Ontology,
    options: &Arc<EvalOptions>,
) -> StreamPlan {
    if options.disjunction_decomposition && pc.mode == QueryMode::Approx {
        // Branch plans compile on first use and are cached for every later
        // execution. A compile failure cannot happen once the main plan
        // compiled (same constants, same costs); if it somehow did, falling
        // back to plain evaluation is still correct — decomposition is an
        // optimisation, not a semantics change.
        let branches = pc.branches.get_or_init(|| {
            match compile_branches(conjunct, graph, ontology, options) {
                Ok(branches) => branches,
                Err(e) => {
                    debug_assert!(false, "branch compile failed after main plan compiled: {e}");
                    None
                }
            }
        });
        if let Some(branches) = branches {
            return StreamPlan::Disjunction(branches.clone());
        }
    }
    if options.distance_aware && pc.mode != QueryMode::Exact {
        return StreamPlan::DistanceAware(Arc::clone(&pc.plan));
    }
    StreamPlan::Plain(Arc::clone(&pc.plan))
}

/// A query compiled once and executable many times, from many threads.
///
/// `PreparedQuery` is `Send + Sync` and cheap to clone: it shares the frozen
/// graph, the base options and the compiled plans through `Arc`s. Each
/// [`PreparedQuery::answers`] call builds fresh evaluator state, so
/// concurrent executions never interfere.
#[derive(Clone)]
pub struct PreparedQuery {
    data: Arc<GraphData>,
    base: Arc<EvalOptions>,
    pool: Arc<WorkerPool>,
    govern: Arc<ResourceGovernor>,
    metrics: Arc<CoreMetrics>,
    inner: Arc<PreparedInner>,
}

impl PreparedQuery {
    /// The parsed query this statement was compiled from.
    pub fn query(&self) -> &Query {
        &self.inner.query
    }

    /// Streams the ranked answers for one execution under `request`.
    pub fn answers(&self, request: &ExecOptions) -> Answers<'_> {
        let options = request.resolve(&self.base);
        self.inner.answers(
            &self.data,
            &self.pool,
            &self.govern,
            &self.metrics,
            options,
            request.limit,
            request.profile,
        )
    }

    /// Executes under `request` and collects the answers.
    pub fn execute(&self, request: &ExecOptions) -> Result<Vec<Answer>> {
        self.answers(request).collect_up_to(None)
    }

    /// Whether `self` and `other` share the same compiled plans (i.e. one
    /// came from the other through the prepared-statement cache or `clone`).
    pub fn shares_plans_with(&self, other: &PreparedQuery) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// The storage epoch this statement was compiled against and is pinned
    /// to: every execution reads that epoch's graph, regardless of
    /// mutations applied since.
    pub fn epoch(&self) -> u64 {
        self.data.epoch
    }
}

impl std::fmt::Debug for PreparedQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedQuery")
            .field("conjuncts", &self.inner.conjuncts.len())
            .field("head", &self.inner.query.head)
            .finish()
    }
}

/// Per-request execution options: a builder carried alongside the query, so
/// concurrent requests against one [`Database`] can each bring their own
/// limit, deadline and toggles without touching shared state.
///
/// Every field is an *override*: unset fields inherit the database's base
/// [`EvalOptions`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecOptions {
    /// Maximum number of answers to return (`None` = all).
    pub limit: Option<usize>,
    /// Wall-clock budget measured from the start of execution.
    pub timeout: Option<Duration>,
    /// Absolute wall-clock deadline; the tighter of `timeout` and `deadline`
    /// wins when both are set.
    pub deadline: Option<Instant>,
    /// Hard ceiling on answer distance.
    pub max_distance: Option<u32>,
    /// Live-tuple budget override (see [`EvalOptions::max_tuples`]).
    pub max_tuples: Option<usize>,
    /// Distance-aware retrieval toggle override.
    pub distance_aware: Option<bool>,
    /// Alternation→disjunction decomposition toggle override.
    pub disjunction_decomposition: Option<bool>,
    /// Initial-node batch size override.
    pub batch_size: Option<usize>,
    /// Final-tuple prioritisation override.
    pub prioritize_final: Option<bool>,
    /// Parallel conjunct evaluation override (see
    /// [`EvalOptions::parallel_conjuncts`]).
    pub parallel_conjuncts: Option<bool>,
    /// Conjunct worker budget override (`0` = one worker per conjunct).
    pub parallel_workers: Option<usize>,
    /// Per-worker answer channel capacity override.
    pub parallel_channel_capacity: Option<usize>,
    /// Cost-guided evaluation override (see [`EvalOptions::cost_guided`]).
    pub cost_guided: Option<bool>,
    /// Overload policy override: what happens when a resource budget trips
    /// mid-query or the governor rejects the execution at admission (see
    /// [`OverloadPolicy`]).
    pub on_overload: Option<OverloadPolicy>,
    /// Record a per-phase [`QueryProfile`] for this execution (read it with
    /// [`Answers::profile`] after the stream finishes). Off by default: the
    /// unprofiled path pays a single branch per answer pull.
    pub profile: bool,
}

impl ExecOptions {
    /// Request with no overrides: the database's base options, no limit, no
    /// deadline.
    pub fn new() -> ExecOptions {
        ExecOptions::default()
    }

    /// Returns at most `limit` answers.
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Aborts evaluation [`OmegaError::DeadlineExceeded`] once `timeout` has
    /// elapsed from the start of execution.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Aborts evaluation at the absolute instant `deadline`.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Ignores answers (and prunes exploration) beyond distance `max`.
    pub fn with_max_distance(mut self, max: u32) -> Self {
        self.max_distance = Some(max);
        self
    }

    /// Overrides the live-tuple budget.
    pub fn with_max_tuples(mut self, max: usize) -> Self {
        self.max_tuples = Some(max);
        self
    }

    /// Overrides the distance-aware retrieval toggle.
    pub fn with_distance_aware(mut self, on: bool) -> Self {
        self.distance_aware = Some(on);
        self
    }

    /// Overrides the alternation→disjunction decomposition toggle.
    pub fn with_disjunction_decomposition(mut self, on: bool) -> Self {
        self.disjunction_decomposition = Some(on);
        self
    }

    /// Overrides the initial-node batch size.
    pub fn with_batch_size(mut self, batch: usize) -> Self {
        self.batch_size = Some(batch);
        self
    }

    /// Overrides final-tuple prioritisation.
    pub fn with_prioritize_final(mut self, on: bool) -> Self {
        self.prioritize_final = Some(on);
        self
    }

    /// Evaluates the conjuncts of a multi-conjunct query on parallel worker
    /// threads. The answer sequence is identical to sequential evaluation —
    /// same tuples, same rank order — only wall-clock behaviour changes.
    pub fn with_parallel_conjuncts(mut self, on: bool) -> Self {
        self.parallel_conjuncts = Some(on);
        self
    }

    /// Caps the number of conjunct worker threads (`0` = one per conjunct).
    pub fn with_parallel_workers(mut self, workers: usize) -> Self {
        self.parallel_workers = Some(workers);
        self
    }

    /// Overrides the per-worker answer channel capacity.
    pub fn with_parallel_channel_capacity(mut self, capacity: usize) -> Self {
        self.parallel_channel_capacity = Some(capacity);
        self
    }

    /// Enables or disables cost-guided evaluation (A* queue ordering,
    /// bound/dead-state pruning, deferred expansion, stats-driven planning)
    /// for this request. Answer sets, distances and the non-decreasing
    /// distance order are identical either way; only work changes.
    pub fn with_cost_guided(mut self, on: bool) -> Self {
        self.cost_guided = Some(on);
        self
    }

    /// Selects what happens under resource pressure: fail with a typed
    /// error (default), degrade to the already-proven answer prefix, or
    /// shed load (shrink budgets, back off, retry admission once).
    pub fn with_on_overload(mut self, policy: OverloadPolicy) -> Self {
        self.on_overload = Some(policy);
        self
    }

    /// Records a per-phase timing profile for this execution, retrievable
    /// via [`Answers::profile`] once the stream has finished.
    pub fn with_profile(mut self, on: bool) -> Self {
        self.profile = on;
        self
    }

    /// Folds the overrides into `base`, resolving the relative timeout into
    /// an absolute deadline at call time (i.e. execution start).
    pub(crate) fn resolve(&self, base: &EvalOptions) -> EvalOptions {
        let mut options = base.clone();
        if let Some(max) = self.max_tuples {
            options.max_tuples = Some(max);
        }
        if let Some(on) = self.distance_aware {
            options.distance_aware = on;
        }
        if let Some(on) = self.disjunction_decomposition {
            options.disjunction_decomposition = on;
        }
        if let Some(batch) = self.batch_size {
            options.batch_size = batch.max(1);
        }
        if let Some(on) = self.prioritize_final {
            options.prioritize_final = on;
        }
        if let Some(on) = self.parallel_conjuncts {
            options.parallel_conjuncts = on;
        }
        if let Some(workers) = self.parallel_workers {
            options.parallel_workers = workers;
        }
        if let Some(capacity) = self.parallel_channel_capacity {
            options.parallel_channel_capacity = capacity.max(1);
        }
        if let Some(on) = self.cost_guided {
            options.cost_guided = on;
        }
        if let Some(policy) = self.on_overload {
            options.on_overload = policy;
        }
        if self.max_distance.is_some() {
            options.max_distance = self.max_distance;
        }
        let from_timeout = self.timeout.map(|t| Instant::now() + t);
        options.deadline = match (self.deadline, from_timeout) {
            (Some(d), Some(t)) => Some(d.min(t)),
            (Some(d), None) => Some(d),
            (None, Some(t)) => Some(t),
            (None, None) => base.deadline,
        };
        options
    }
}

/// A streaming handle over one execution's ranked answers.
///
/// Yields answers in non-decreasing total-distance order, enforcing the
/// request's limit, distance ceiling and deadline. Implements
/// `Iterator<Item = Result<Answer>>`; after an error or exhaustion the
/// stream is fused.
///
/// The handle owns the execution's shared [`CancelToken`]: it is triggered
/// as soon as the stream finishes (limit reached, exhausted, or failed) and
/// on drop, which promptly stops any parallel conjunct workers still
/// producing — their threads are then joined when the stream's join inputs
/// drop.
pub struct Answers<'a> {
    graph: &'a GraphStore,
    join: RankJoin<'a>,
    /// Head variable names, in projection order.
    head: Vec<String>,
    /// Join slot of each head variable, resolved once at stream creation.
    head_slots: Vec<usize>,
    /// Projection-level deduplication over head-slot node-id tuples.
    emitted: FxHashSet<Vec<NodeId>>,
    limit: Option<usize>,
    yielded: usize,
    max_distance: Option<u32>,
    deadline: Option<Instant>,
    /// The execution's shared cancellation token.
    cancel: CancelToken,
    finished: bool,
    /// Admission failure deferred to the first pull (the constructor is
    /// infallible by signature).
    pending: Option<OmegaError>,
    /// Concurrency-slot permit; released when the stream finishes or drops.
    permit: Option<ExecutionPermit>,
    /// Governor whose join-buffer gauge mirrors this stream's buffered
    /// entries (`None` for rejected streams that never ran).
    govern: Option<Arc<ResourceGovernor>>,
    /// Last buffered-entry count pushed into the governor's gauge.
    buffered: usize,
    /// Shed retries performed at admission, surfaced through
    /// [`Answers::stats`].
    sheds: u64,
    /// When this execution started (admission included), for the
    /// execution-latency histogram and the profile's `total` phase.
    started: Instant,
    /// Engine metric handles; `take()`n when the stream ends so the
    /// execution histogram records each stream exactly once. `None` for
    /// rejected streams (the governor already counted those).
    metrics: Option<Arc<CoreMetrics>>,
    /// Live profile accumulators (requests with
    /// [`ExecOptions::with_profile`] only).
    profile: Option<Box<ProfileState>>,
    /// The folded per-phase breakdown, available via [`Answers::profile`]
    /// once the stream has finished.
    profile_out: Option<QueryProfile>,
}

impl<'a> Answers<'a> {
    /// An inert stream standing in for an execution the governor rejected:
    /// its first pull returns the admission error, then it is fused.
    fn rejected(graph: &'a GraphStore, err: OmegaError, sheds: u64) -> Answers<'a> {
        Answers {
            graph,
            join: RankJoin::new(Vec::new()),
            head: Vec::new(),
            head_slots: Vec::new(),
            emitted: FxHashSet::default(),
            limit: None,
            yielded: 0,
            max_distance: None,
            deadline: None,
            cancel: CancelToken::new(),
            finished: false,
            pending: Some(err),
            permit: None,
            govern: None,
            buffered: 0,
            sheds,
            started: Instant::now(),
            metrics: None,
            profile: None,
            profile_out: None,
        }
    }

    /// Marks the stream finished, cancels the execution's shared token so
    /// any parallel conjunct workers stop producing promptly, and returns
    /// the execution's governor resources (permit, gauge contribution).
    fn finish(&mut self) {
        self.finished = true;
        self.cancel.cancel();
        self.sync_buffer_gauge(true);
        self.permit = None;
        self.observe_end();
    }

    /// Folds the execution into the metrics registry (latency histogram,
    /// degrade counter) and the profile accumulators into the final
    /// [`QueryProfile`]. Idempotent via `take()`; also runs from `Drop` so
    /// abandoned streams are still counted.
    fn observe_end(&mut self) {
        let total_ns = elapsed_ns(self.started);
        if let Some(metrics) = self.metrics.take() {
            metrics.exec_ns.record(total_ns);
            if self.join.stats().degraded {
                metrics.degrades.inc();
            }
        }
        if let Some(state) = self.profile.take() {
            let mut profile = QueryProfile::new();
            profile.push("parse", state.parse_ns);
            profile.push("compile", state.compile_ns);
            let mut conjunct_ns = 0u64;
            for (index, nanos) in &state.conjuncts {
                let ns = nanos.load(Ordering::Relaxed);
                conjunct_ns = conjunct_ns.saturating_add(ns);
                profile.push(format!("conjunct_{index}"), ns);
            }
            // The join loop drives the conjunct streams, so its own cost is
            // what remains after their time is taken out; streaming is the
            // projection/dedup/consumer share of the total.
            profile.push("rank_join", state.join_ns.saturating_sub(conjunct_ns));
            profile.push("streaming", total_ns.saturating_sub(state.join_ns));
            profile.push("total", total_ns);
            self.profile_out = Some(profile);
        }
    }

    /// The per-phase timing breakdown of this execution. `Some` only after
    /// the stream has finished (drained, limited, or failed) *and* the
    /// request asked for one via [`ExecOptions::with_profile`].
    pub fn profile(&self) -> Option<&QueryProfile> {
        self.profile_out.as_ref()
    }

    /// Takes the per-phase profile, forcing end-of-execution accounting if
    /// the stream is still open. For stream teardown (a server drained or
    /// cancelled mid-flight still wants the phases that ran); a stream that
    /// has had its profile taken no longer records anything on further use.
    pub fn take_profile(&mut self) -> Option<QueryProfile> {
        self.observe_end();
        self.profile_out.take()
    }

    /// Mirrors the rank join's buffered-entry count into the governor's
    /// gauge as a delta; `drain` pushes this stream's contribution back to
    /// zero when it ends.
    fn sync_buffer_gauge(&mut self, drain: bool) {
        let Some(govern) = &self.govern else { return };
        let now = if drain {
            0
        } else {
            self.join.buffered_entries()
        };
        if now != self.buffered {
            govern.adjust_join_buffer(now as isize - self.buffered as isize);
            self.buffered = now;
        }
    }

    /// The next answer, `Ok(None)` when the stream is exhausted (or the
    /// limit/distance ceiling has been reached).
    pub fn next_answer(&mut self) -> Result<Option<Answer>> {
        if self.finished {
            return Ok(None);
        }
        if let Some(err) = self.pending.take() {
            self.finish();
            return Err(err);
        }
        if self.limit.is_some_and(|l| self.yielded >= l) {
            self.finish();
            return Ok(None);
        }
        // The per-tuple deadline checks live in the conjunct evaluators;
        // this top-level check guarantees an already-expired deadline fails
        // before any join work happens at all.
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.finish();
                return Err(OmegaError::DeadlineExceeded);
            }
        }
        loop {
            // Timing the join pull is the only profiling cost on the answer
            // loop, and only paid when a profile was requested.
            let pulled = if let Some(state) = self.profile.as_mut() {
                let started = Instant::now();
                let next = self.join.get_next_slots();
                state.join_ns = state.join_ns.saturating_add(elapsed_ns(started));
                next
            } else {
                self.join.get_next_slots()
            };
            let next = match pulled {
                Ok(next) => next,
                Err(e) => {
                    self.finish();
                    return Err(e);
                }
            };
            self.sync_buffer_gauge(false);
            let Some((bindings, distance)) = next else {
                self.finish();
                return Ok(None);
            };
            if self.max_distance.is_some_and(|max| distance > max) {
                // Total distances are non-decreasing: nothing later can
                // come back under the ceiling.
                self.finish();
                return Ok(None);
            }
            // Project onto the head slots and deduplicate projections. The
            // join only emits candidates with every slot bound, so the
            // expect documents that invariant, not a runtime failure mode.
            #[allow(clippy::expect_used)]
            let key: Vec<NodeId> = self
                .head_slots
                .iter()
                .map(|&slot| bindings[slot].expect("every join candidate binds every slot"))
                .collect();
            if !self.emitted.insert(key.clone()) {
                continue;
            }
            let named: BTreeMap<String, String> = self
                .head
                .iter()
                .zip(key.iter())
                .map(|(var, node)| (var.clone(), self.graph.node_label(*node).to_owned()))
                .collect();
            self.yielded += 1;
            return Ok(Some(Answer {
                bindings: named,
                distance,
            }));
        }
    }

    /// Collects up to `limit` further answers (all remaining when `None`),
    /// on top of any stream-level limit.
    pub fn collect_up_to(&mut self, limit: Option<usize>) -> Result<Vec<Answer>> {
        let mut out = Vec::new();
        while limit.is_none_or(|l| out.len() < l) {
            match self.next_answer()? {
                Some(answer) => out.push(answer),
                None => break,
            }
        }
        Ok(out)
    }

    /// Evaluation statistics accumulated so far across all conjuncts,
    /// including shed retries performed at admission.
    pub fn stats(&self) -> EvalStats {
        let mut stats = self.join.stats();
        stats.sheds += self.sheds;
        stats
    }
}

impl Iterator for Answers<'_> {
    type Item = Result<Answer>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_answer().transpose()
    }
}

impl Drop for Answers<'_> {
    fn drop(&mut self) {
        // Abandoning the stream mid-flight cancels the execution; the join's
        // parallel inputs then join their workers as they drop. The gauge
        // contribution is returned here too (the permit's own `Drop` frees
        // the concurrency slot), and the execution still lands in the
        // latency histogram.
        self.cancel.cancel();
        self.sync_buffer_gauge(true);
        self.observe_end();
    }
}

/// Convenience: the variables a conjunct binds, in `(subject, object)`
/// order, for callers that drive [`crate::eval::ConjunctEvaluator`]
/// directly.
pub fn conjunct_variables(conjunct: &crate::query::ast::Conjunct) -> Vec<&str> {
    [&conjunct.subject, &conjunct.object]
        .into_iter()
        .filter_map(Term::as_variable)
        .collect()
}

// `Database`, `PreparedQuery` and the request/stream types are the shared
// service surface: hold the compiler to it.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Database>();
    assert_send_sync::<PreparedQuery>();
    assert_send_sync::<ExecOptions>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut g = GraphStore::new();
        g.add_triple("alice", "knows", "bob");
        g.add_triple("bob", "knows", "carol");
        g.add_triple("carol", "knows", "dave");
        g.add_triple("alice", "worksAt", "acme");
        g.add_triple("bob", "worksAt", "initech");
        g.add_triple("acme", "locatedIn", "UK");
        g.add_triple("initech", "locatedIn", "US");
        g.add_triple("alice", "type", "Student");
        g.add_triple("bob", "type", "Person");
        let mut o = Ontology::new();
        let student = g.node_by_label("Student").unwrap();
        let person = g.node_by_label("Person").unwrap();
        o.add_subclass(student, person).unwrap();
        Database::new(g, o)
    }

    #[test]
    fn database_executes_like_the_engine() {
        let db = db();
        let answers = db
            .execute("(?X) <- (alice, knows+, ?X)", &ExecOptions::new())
            .unwrap();
        assert_eq!(answers.len(), 3);
        assert!(answers.iter().all(|a| a.distance == 0));
    }

    #[test]
    fn profile_records_every_phase_when_requested() {
        let db = db();
        let prepared = db
            .prepare("(?X, ?W) <- (?X, knows, ?Y), (?Y, worksAt, ?W)")
            .unwrap();
        let mut answers = prepared.answers(&ExecOptions::new().with_profile(true));
        assert!(answers.profile().is_none(), "not available mid-stream");
        let collected = answers.collect_up_to(None).unwrap();
        assert!(!collected.is_empty());
        let profile = answers.profile().expect("requested profile");
        for phase in [
            "parse",
            "compile",
            "conjunct_0",
            "conjunct_1",
            "rank_join",
            "streaming",
            "total",
        ] {
            assert!(profile.get(phase).is_some(), "missing phase {phase}");
        }
        assert!(
            profile.get("parse").unwrap() > 0,
            "cache-missed prepare timed the parse"
        );
        assert!(profile.get("compile").unwrap() > 0);
        assert!(profile.total_nanos() >= profile.get("rank_join").unwrap());
    }

    #[test]
    fn profile_is_absent_by_default() {
        let db = db();
        let prepared = db.prepare("(?X) <- (alice, knows, ?X)").unwrap();
        let mut answers = prepared.answers(&ExecOptions::new());
        answers.collect_up_to(None).unwrap();
        assert!(answers.profile().is_none());
    }

    #[test]
    fn registry_counts_prepares_executions_and_cache_hits() {
        let db = db();
        db.prepare("(?X) <- (alice, knows, ?X)").unwrap();
        db.prepare("(?X) <- (alice, knows, ?X)").unwrap();
        db.execute("(?X) <- (alice, knows, ?X)", &ExecOptions::new())
            .unwrap();
        let text = db.metrics().expose();
        let get = |series: &str| omega_obs::find_value(&text, series).unwrap_or(-1.0);
        assert_eq!(get("omega_core_prepares_total"), 3.0);
        assert_eq!(get("omega_core_prepare_cache_hits_total"), 2.0);
        assert_eq!(get("omega_core_executions_total"), 1.0);
        assert_eq!(get("omega_core_execution_ns_count"), 1.0);
        assert_eq!(get("omega_govern_admitted_total"), 1.0);
    }

    #[test]
    fn registry_counts_mutations_and_compactions() {
        let db = db();
        let mut batch = db.begin_mutation();
        batch.add("dave", "knows", "erin");
        db.apply(&batch).unwrap();
        db.compact();
        db.compact(); // no overlay: must not count
        let text = db.metrics().expose();
        let get = |series: &str| omega_obs::find_value(&text, series).unwrap_or(-1.0);
        assert_eq!(get("omega_core_mutations_total"), 1.0);
        assert_eq!(get("omega_core_compactions_total"), 1.0);
    }

    #[test]
    fn prepare_hits_the_cache() {
        let db = db();
        let first = db.prepare("(?X) <- (alice, knows, ?X)").unwrap();
        let second = db.prepare("(?X) <- (alice, knows, ?X)").unwrap();
        assert!(first.shares_plans_with(&second));
        assert_eq!(db.prepared_cache_len(), 1);
        let uncached = db.prepare_uncached("(?X) <- (alice, knows, ?X)").unwrap();
        assert!(!first.shares_plans_with(&uncached));
    }

    #[test]
    fn lru_cache_evicts_oldest() {
        let mut cache = PreparedCache::new(2);
        let db = db();
        let p = db.prepare_uncached("(?X) <- (alice, knows, ?X)").unwrap();
        cache.finish_build("a", 0, p.clone());
        cache.finish_build("b", 0, p.clone());
        // Refresh "a": now "b" is oldest.
        assert!(matches!(cache.probe("a", 0), CacheProbe::Hit(_)));
        cache.finish_build("c", 0, p.clone());
        assert!(matches!(cache.probe("b", 0), CacheProbe::Miss));
        assert!(matches!(cache.probe("a", 0), CacheProbe::Hit(_)));
        assert!(matches!(cache.probe("c", 0), CacheProbe::Hit(_)));
    }

    #[test]
    fn stale_epoch_entries_miss_and_building_slots_survive_eviction() {
        let mut cache = PreparedCache::new(2);
        let db = db();
        let p = db.prepare_uncached("(?X) <- (alice, knows, ?X)").unwrap();
        cache.finish_build("a", 0, p.clone());
        // A later epoch sees the entry as a miss and drops it.
        assert!(matches!(cache.probe("a", 1), CacheProbe::Miss));
        assert!(matches!(cache.probe("a", 1), CacheProbe::Miss));
        // In-flight markers report busy and are never evicted by capacity.
        cache.begin_build("x".into());
        cache.begin_build("y".into());
        cache.finish_build("b", 1, p.clone());
        assert!(matches!(cache.probe("x", 1), CacheProbe::Busy));
        assert!(matches!(cache.probe("y", 1), CacheProbe::Busy));
        cache.abort_build("x");
        assert!(matches!(cache.probe("x", 1), CacheProbe::Miss));
    }

    #[test]
    fn prepared_query_executes_repeatedly() {
        let db = db();
        let prepared = db
            .prepare("(?X) <- APPROX (alice, worksAt.worksAt, ?X)")
            .unwrap();
        let first = prepared.execute(&ExecOptions::new()).unwrap();
        let second = prepared.execute(&ExecOptions::new()).unwrap();
        assert!(!first.is_empty());
        assert_eq!(first, second);
    }

    #[test]
    fn limit_and_iterator_agree() {
        let db = db();
        let prepared = db.prepare("(?X) <- (alice, knows+, ?X)").unwrap();
        let collected: Result<Vec<_>> = prepared
            .answers(&ExecOptions::new().with_limit(2))
            .collect();
        assert_eq!(collected.unwrap().len(), 2);
    }

    #[test]
    fn zero_timeout_deadline_fires() {
        let db = db();
        let prepared = db.prepare("(?X, ?Y) <- APPROX (?X, knows+, ?Y)").unwrap();
        let request = ExecOptions::new().with_timeout(Duration::ZERO);
        let mut answers = prepared.answers(&request);
        assert!(matches!(
            answers.next_answer(),
            Err(OmegaError::DeadlineExceeded)
        ));
        // The stream is fused after the error.
        assert!(answers.next().is_none());
    }

    #[test]
    fn absolute_deadline_in_the_past_fires() {
        let db = db();
        let request = ExecOptions::new().with_deadline(Instant::now());
        let err = db
            .execute("(?X) <- APPROX (alice, knows.knows, ?X)", &request)
            .unwrap_err();
        assert!(matches!(err, OmegaError::DeadlineExceeded));
    }

    #[test]
    fn max_distance_truncates_the_stream() {
        let db = db();
        let prepared = db
            .prepare("(?X) <- APPROX (alice, worksAt.worksAt, ?X)")
            .unwrap();
        let all = prepared.execute(&ExecOptions::new()).unwrap();
        assert!(all.iter().any(|a| a.distance > 1));
        let capped = prepared
            .execute(&ExecOptions::new().with_max_distance(1))
            .unwrap();
        assert!(capped.iter().all(|a| a.distance <= 1));
        let expected = all.iter().filter(|a| a.distance <= 1).count();
        assert_eq!(capped.len(), expected);
    }

    #[test]
    fn per_request_toggles_do_not_change_answers() {
        let db = db();
        let prepared = db
            .prepare("(?X) <- APPROX (alice, (knows.knows)|(worksAt.locatedIn), ?X)")
            .unwrap();
        let sort = |mut v: Vec<Answer>| {
            v.sort_by(|a, b| (&a.bindings, a.distance).cmp(&(&b.bindings, b.distance)));
            v
        };
        let reference = sort(prepared.execute(&ExecOptions::new()).unwrap());
        for request in [
            ExecOptions::new().with_distance_aware(true),
            ExecOptions::new().with_disjunction_decomposition(true),
            ExecOptions::new().with_batch_size(1),
            ExecOptions::new().with_prioritize_final(false),
        ] {
            assert_eq!(reference, sort(prepared.execute(&request).unwrap()));
        }
    }

    #[test]
    fn reconfigured_shares_storage() {
        let db = db();
        let relaxed = db.reconfigured(EvalOptions::default().with_max_tuples(Some(10)));
        assert_eq!(relaxed.options().max_tuples, Some(10));
        assert!(std::ptr::eq(&*db.graph(), &*relaxed.graph()));
        // Mutations through one handle are visible through the other.
        let mut batch = db.begin_mutation();
        batch.add("alice", "knows", "eve");
        db.apply(&batch).unwrap();
        assert_eq!(relaxed.epoch(), db.epoch());
        assert!(std::ptr::eq(&*db.graph(), &*relaxed.graph()));
    }

    #[test]
    fn concurrent_clones_answer_identically() {
        let db = db();
        let prepared = db
            .prepare("(?X) <- APPROX (alice, worksAt.worksAt, ?X)")
            .unwrap();
        let reference = prepared.execute(&ExecOptions::new()).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let prepared = prepared.clone();
                let reference = reference.clone();
                scope.spawn(move || {
                    let got = prepared.execute(&ExecOptions::new()).unwrap();
                    assert_eq!(got, reference);
                });
            }
        });
    }

    #[test]
    fn base_cancel_token_is_a_kill_switch_not_poisoned_by_completion() {
        let mut g = GraphStore::new();
        g.add_triple("alice", "knows", "bob");
        g.add_triple("bob", "worksAt", "acme");
        let token = CancelToken::new();
        let db = Database::with_options(
            g,
            Ontology::new(),
            EvalOptions::default().with_cancel_token(token.clone()),
        );
        let text = "(?X, ?W) <- (?X, knows, ?Y), (?Y, worksAt, ?W)";
        // Completed executions must not cancel the caller's base token…
        let first = db.execute(text, &ExecOptions::new()).unwrap();
        assert!(!token.is_cancelled());
        // …so later queries still run (sequentially and in parallel).
        let again = db
            .execute(text, &ExecOptions::new().with_parallel_conjuncts(true))
            .unwrap();
        assert_eq!(first, again);
        // Cancelling the base token kills subsequent executions.
        token.cancel();
        let err = db.execute(text, &ExecOptions::new()).unwrap_err();
        assert!(matches!(err, OmegaError::Cancelled));
    }

    #[test]
    fn max_tuples_override_aborts() {
        let db = db();
        let err = db
            .execute(
                "(?X, ?Y) <- APPROX (?X, knows+, ?Y)",
                &ExecOptions::new().with_max_tuples(3),
            )
            .unwrap_err();
        assert!(matches!(err, OmegaError::ResourceExhausted { .. }));
    }

    fn governed_db(config: GovernorConfig) -> Database {
        let mut g = GraphStore::new();
        g.add_triple("alice", "knows", "bob");
        g.add_triple("bob", "knows", "carol");
        g.add_triple("carol", "knows", "dave");
        g.add_triple("alice", "worksAt", "acme");
        g.add_triple("bob", "worksAt", "initech");
        g.add_triple("acme", "locatedIn", "UK");
        g.add_triple("initech", "locatedIn", "US");
        Database::with_governor(g, Ontology::new(), EvalOptions::default(), config)
    }

    #[test]
    fn governed_admission_rejects_with_typed_overloaded() {
        let db = governed_db(
            GovernorConfig::default()
                .with_max_concurrent(1)
                .with_retry_after(Duration::from_millis(7)),
        );
        let held = db.governor().admit().unwrap();
        let err = db
            .execute("(?X) <- (alice, knows+, ?X)", &ExecOptions::new())
            .unwrap_err();
        assert!(
            matches!(err, OmegaError::Overloaded { retry_after } if retry_after >= Duration::from_millis(7))
        );
        assert_eq!(db.governor().gauges().rejected, 1);
        drop(held);
        // The slot freed: the same query now runs.
        let answers = db
            .execute("(?X) <- (alice, knows+, ?X)", &ExecOptions::new())
            .unwrap();
        assert_eq!(answers.len(), 3);
    }

    #[test]
    fn degrade_returns_bit_identical_prefix() {
        let db = db();
        let text = "(?X, ?Y) <- APPROX (?X, knows+, ?Y)";
        let full = db.execute(text, &ExecOptions::new()).unwrap();
        assert!(!full.is_empty());
        // Fail (the default) aborts under the same budget…
        let capped = ExecOptions::new().with_max_tuples(3);
        assert!(db.execute(text, &capped).is_err());
        // …Degrade instead ends the stream cleanly with the proven prefix.
        let prepared = db.prepare(text).unwrap();
        let mut stream =
            prepared.answers(&capped.clone().with_on_overload(OverloadPolicy::Degrade));
        let partial = stream.collect_up_to(None).unwrap();
        let stats = stream.stats();
        assert!(stats.degraded, "degraded flag must be set");
        assert!(stats.truncation.is_some(), "truncation reason must be set");
        assert!(partial.len() < full.len());
        assert_eq!(
            partial[..],
            full[..partial.len()],
            "prefix must be bit-identical"
        );
    }

    #[test]
    fn shed_retries_once_then_surfaces_overload() {
        let db = governed_db(
            GovernorConfig::default()
                .with_max_concurrent(1)
                .with_retry_after(Duration::from_millis(1)),
        );
        let held = db.governor().admit().unwrap();
        // The slot stays taken: the shed retry also fails, so the typed
        // error surfaces — but exactly one shed attempt was made.
        let prepared = db.prepare("(?X) <- (alice, knows, ?X)").unwrap();
        let request = ExecOptions::new()
            .with_max_tuples(64)
            .with_on_overload(OverloadPolicy::Shed);
        let mut stream = prepared.answers(&request);
        assert!(matches!(
            stream.next_answer(),
            Err(OmegaError::Overloaded { .. })
        ));
        assert_eq!(stream.stats().sheds, 1);
        assert_eq!(db.governor().gauges().rejected, 2);
        drop(held);
        // With the slot free the shed path is never taken.
        let mut stream = prepared.answers(&request);
        let answers = stream.collect_up_to(None).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(stream.stats().sheds, 0);
    }

    #[test]
    fn shed_succeeds_when_the_slot_frees_during_backoff() {
        let db = governed_db(
            GovernorConfig::default()
                .with_max_concurrent(1)
                .with_retry_after(Duration::from_millis(250)),
        );
        let held = db.governor().admit().unwrap();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                drop(held);
            });
            let prepared = db.prepare("(?X) <- (alice, knows+, ?X)").unwrap();
            let mut stream =
                prepared.answers(&ExecOptions::new().with_on_overload(OverloadPolicy::Shed));
            let answers = stream.collect_up_to(None).unwrap();
            assert_eq!(answers.len(), 3, "shed retry must run the query");
            assert_eq!(stream.stats().sheds, 1);
        });
    }

    #[test]
    fn gauges_return_to_zero_after_execution() {
        let db = governed_db(
            GovernorConfig::default()
                .with_max_live_tuples(1 << 16)
                .with_max_concurrent(4),
        );
        let text = "(?X, ?W) <- (?X, knows, ?Y), (?Y, worksAt, ?W)";
        let prepared = db.prepare(text).unwrap();
        {
            let mut stream = prepared.answers(&ExecOptions::new());
            assert!(stream.next_answer().unwrap().is_some());
            let during = db.governor().gauges();
            assert_eq!(during.executions, 1);
            assert!(during.live_tuples > 0, "reservations drawn mid-query");
            // Abandon the stream mid-flight: Drop must return everything.
        }
        let after = db.governor().gauges();
        assert_eq!(after.executions, 0);
        assert_eq!(after.live_tuples, 0);
        assert_eq!(after.join_buffer_entries, 0);
    }

    #[test]
    fn mutations_publish_new_epochs_and_pin_readers() {
        let db = db();
        assert_eq!(db.epoch(), 0);
        let text = "(?X) <- (alice, knows+, ?X)";
        let pinned = db.prepare(text).unwrap();
        assert_eq!(pinned.epoch(), 0);
        let before = pinned.execute(&ExecOptions::new()).unwrap();
        assert_eq!(before.len(), 3);

        let mut batch = db.begin_mutation();
        batch
            .add("dave", "knows", "eve")
            .remove("carol", "knows", "dave");
        let report = db.apply(&batch).unwrap();
        assert_eq!(
            report,
            MutationReport {
                epoch: 1,
                added: 1,
                removed: 1
            }
        );
        assert_eq!(db.epoch(), 1);
        assert_eq!(db.graph().epoch(), 1);

        // The statement pinned to epoch 0 answers exactly as before…
        assert_eq!(pinned.execute(&ExecOptions::new()).unwrap(), before);
        // …while a fresh prepare sees the mutated graph: carol→dave is
        // gone, so dave (and the new eve) are unreachable from alice.
        let fresh = db.prepare(text).unwrap();
        assert_eq!(fresh.epoch(), 1);
        assert!(!pinned.shares_plans_with(&fresh));
        let after = fresh.execute(&ExecOptions::new()).unwrap();
        let bound: Vec<&str> = after.iter().filter_map(|a| a.get("X")).collect();
        assert_eq!(bound, ["bob", "carol"]);

        // An empty batch is a no-op that does not bump the epoch.
        let noop = db.apply(&db.begin_mutation()).unwrap();
        assert_eq!(noop.epoch, 1);
        assert_eq!((noop.added, noop.removed), (0, 0));
    }

    #[test]
    fn stale_plans_are_recompiled_not_reused_after_mutation() {
        let db = db();
        let text = "(?X) <- (alice, knows+, ?X)";

        // Warm the cache at epoch 0 and confirm it actually serves hits.
        let stale = db.prepare(text).unwrap();
        assert!(stale.shares_plans_with(&db.prepare(text).unwrap()));
        assert_eq!(db.prepared_cache_len(), 1);

        // A mutation publishes epoch 1; the cached plan must NOT be reused,
        // or queries would silently answer against the wrong graph.
        let mut batch = db.begin_mutation();
        batch.add("dave", "knows", "erin");
        assert_eq!(db.apply(&batch).unwrap().epoch, 1);
        let fresh = db.prepare(text).unwrap();
        assert!(!stale.shares_plans_with(&fresh));
        assert_eq!((stale.epoch(), fresh.epoch()), (0, 1));
        // The recompiled plan replaces the stale entry rather than growing
        // the cache, and subsequent prepares hit it again.
        assert_eq!(db.prepared_cache_len(), 1);
        assert!(fresh.shares_plans_with(&db.prepare(text).unwrap()));

        // The answers prove which graph each plan reads: the stale handle
        // stays pinned to epoch 0, the fresh one sees the new edge.
        let bound = |p: &PreparedQuery| -> Vec<String> {
            let mut xs: Vec<String> = p
                .execute(&ExecOptions::new())
                .unwrap()
                .iter()
                .filter_map(|a| a.get("X").map(str::to_owned))
                .collect();
            xs.sort();
            xs
        };
        assert_eq!(bound(&stale), ["bob", "carol", "dave"]);
        assert_eq!(bound(&fresh), ["bob", "carol", "dave", "erin"]);

        // Compaction is also a new epoch: plans compiled against the
        // overlay graph are invalidated, but the answers are unchanged.
        assert_eq!(db.compact(), 2);
        let compacted = db.prepare(text).unwrap();
        assert!(!fresh.shares_plans_with(&compacted));
        assert_eq!(compacted.epoch(), 2);
        assert_eq!(bound(&compacted), bound(&fresh));
    }

    #[test]
    fn mid_stream_mutations_leave_answers_and_stats_bit_identical() {
        let db = db();
        let text = "(?X, ?Y) <- APPROX (?X, knows+, ?Y)";
        let prepared = db.prepare(text).unwrap();
        let mut reference_stream = prepared.answers(&ExecOptions::new());
        let reference = reference_stream.collect_up_to(None).unwrap();
        let reference_stats = reference_stream.stats();
        assert!(reference.len() > 1);

        let mut stream = prepared.answers(&ExecOptions::new());
        let first = stream.next_answer().unwrap().unwrap();
        // A mutation lands while the stream is mid-flight…
        let mut batch = db.begin_mutation();
        batch
            .add("zed", "knows", "alice")
            .remove("alice", "knows", "bob");
        db.apply(&batch).unwrap();
        // …and the pinned stream neither sees it nor changes its stats.
        let mut got = vec![first];
        got.extend(stream.collect_up_to(None).unwrap());
        assert_eq!(got, reference);
        assert_eq!(stream.stats(), reference_stats);
    }

    #[test]
    fn concurrent_prepare_misses_compile_once() {
        let db = db();
        let text = "(?X) <- APPROX (alice, knows.knows, ?X)";
        let barrier = std::sync::Barrier::new(8);
        let prepared: Vec<PreparedQuery> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        barrier.wait();
                        db.prepare(text).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for p in &prepared[1..] {
            assert!(
                prepared[0].shares_plans_with(p),
                "stampeded misses must share one compilation"
            );
        }
        assert_eq!(db.prepared_compilations(), 1);
        assert_eq!(db.prepared_cache_len(), 1);
    }

    #[test]
    fn compact_folds_the_overlay_without_changing_answers() {
        let db = db();
        let text = "(?X) <- (alice, knows+, ?X)";
        let mut batch = db.begin_mutation();
        batch.add("dave", "knows", "eve");
        db.apply(&batch).unwrap();
        assert!(db.graph().has_overlay());
        let overlaid = db
            .prepare(text)
            .unwrap()
            .execute(&ExecOptions::new())
            .unwrap();
        assert_eq!(overlaid.len(), 4);

        assert_eq!(db.compact(), 2);
        assert!(!db.graph().has_overlay());
        let compacted = db
            .prepare(text)
            .unwrap()
            .execute(&ExecOptions::new())
            .unwrap();
        assert_eq!(compacted, overlaid);
        // Compacting an overlay-free epoch is a no-op.
        assert_eq!(db.compact(), 2);
    }

    #[test]
    fn save_snapshot_compacts_a_live_overlay_first() {
        let db = db();
        let mut batch = db.begin_mutation();
        batch
            .add("dave", "knows", "eve")
            .remove("alice", "worksAt", "acme");
        db.apply(&batch).unwrap();
        assert!(db.graph().has_overlay());

        let path = std::env::temp_dir().join(format!(
            "omega-service-snapshot-compact-{}.omega",
            std::process::id()
        ));
        db.save_snapshot(&path).unwrap();
        assert!(!db.graph().has_overlay(), "saving folds the overlay");

        let reopened = Database::open_snapshot(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let text = "(?X) <- (alice, knows+, ?X)";
        assert_eq!(
            reopened
                .prepare(text)
                .unwrap()
                .execute(&ExecOptions::new())
                .unwrap(),
            db.prepare(text)
                .unwrap()
                .execute(&ExecOptions::new())
                .unwrap()
        );
    }

    #[test]
    fn reconfigured_shares_the_governor() {
        let db = governed_db(GovernorConfig::default().with_max_concurrent(2));
        let view = db.reconfigured(EvalOptions::default().with_max_tuples(Some(10)));
        assert!(Arc::ptr_eq(db.governor(), view.governor()));
    }
}
