//! # omega
//!
//! Facade crate for **Omega-RS**, a Rust reproduction of *Implementing
//! Flexible Operators for Regular Path Queries* (Selmer, Poulovassilis, Wood;
//! EDBT/ICDT Workshops 2015).
//!
//! The heavy lifting lives in the member crates; this crate simply re-exports
//! them so that applications can depend on a single crate:
//!
//! * [`graph`] — the graph store substrate (Sparksee substitute),
//! * [`ontology`] — the RDFS-subset ontology,
//! * [`regex`] — RPQ regular expressions,
//! * [`automata`] — weighted NFAs with APPROX/RELAX augmentation,
//! * [`core`] — the query language, ranked evaluator and `Omega` engine,
//! * [`datagen`] — the L4All and YAGO-like data generators used by the
//!   reproduction study.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use omega_automata as automata;
pub use omega_core as core;
pub use omega_datagen as datagen;
pub use omega_graph as graph;
pub use omega_ontology as ontology;
pub use omega_regex as regex;

pub use omega_core::{Answer, EvalOptions, Omega, QueryMode};
pub use omega_graph::{Direction, GraphStore, LabelId, NodeId};
pub use omega_ontology::Ontology;
