//! # omega
//!
//! Facade crate for **Omega-RS**, a Rust reproduction of *Implementing
//! Flexible Operators for Regular Path Queries* (Selmer, Poulovassilis, Wood;
//! EDBT/ICDT Workshops 2015).
//!
//! The heavy lifting lives in the member crates; this crate simply re-exports
//! them so that applications can depend on a single crate:
//!
//! * [`graph`] — the graph store substrate (Sparksee substitute),
//! * [`ontology`] — the RDFS-subset ontology,
//! * [`regex`] — RPQ regular expressions,
//! * [`automata`] — weighted NFAs with APPROX/RELAX augmentation,
//! * [`core`] — the query language, ranked evaluator and the
//!   [`Database`] / [`PreparedQuery`] service API,
//! * [`datagen`] — the L4All and YAGO-like data generators used by the
//!   reproduction study.
//!
//! ## Quick start
//!
//! ```
//! use omega::{Database, ExecOptions, GraphStore, Ontology};
//!
//! let mut graph = GraphStore::new();
//! graph.add_triple("alice", "knows", "bob");
//! let db = Database::new(graph, Ontology::new());
//!
//! // Prepared once (and cached by text), executable from any thread.
//! let prepared = db.prepare("(?X) <- (alice, knows, ?X)").unwrap();
//! let answers = prepared.execute(&ExecOptions::new()).unwrap();
//! assert_eq!(answers[0].get("X"), Some("bob"));
//! ```
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use omega_automata as automata;
pub use omega_core as core;
pub use omega_datagen as datagen;
pub use omega_graph as graph;
pub use omega_ontology as ontology;
pub use omega_regex as regex;

#[allow(deprecated)]
pub use omega_core::Omega;
pub use omega_core::{
    Answer, Answers, Database, EvalOptions, ExecOptions, PreparedQuery, QueryMode,
};
pub use omega_graph::{Direction, GraphStore, LabelId, NodeId};
pub use omega_ontology::Ontology;
